package ir

import (
	"bytes"
	"strings"
	"testing"
)

// jsonTestLoop builds a loop exercising every node type the codec handles:
// both array kinds, both scalar kinds, temp and element destinations,
// conditionals with and without else, every expression form, and live-outs.
func jsonTestLoop() *Loop {
	b := NewBuilder("codec", "i", 0, 16, 2)
	b.ArrayF("a", []float64{1, 2.5, -3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	b.ArrayI("idx", []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	b.ArrayF("o", make([]float64, 16))
	s := b.ScalarF("scale", 1.5)
	n := b.ScalarI("n", 16)
	i := b.Idx()
	x := b.Def("x", MulE(LDF("a", LDI("idx", i)), s))
	c := b.Def("c", AndE(LtE(i, n), GtE(x, F(0))))
	b.If(c, func() {
		b.Def("y", SqrtE(AbsE(ExpE(NegE(b.T("x"))))))
	}, func() {
		b.Def("y", IToF(FToI(FloorE(LogE(AddE(AbsE(b.T("x")), F(1)))))))
	})
	b.If(NotE(b.T("c")), func() {
		b.StoreI("idx", i, RemE(ShlE(i, I(1)), MaxE(n, I(1))))
	}, nil)
	b.Def("acc", MinE(b.T("y"), MaxE(b.T("y"), SubE(b.T("x"), DivE(b.T("y"), F(2))))))
	b.Def("sel", EqE(NeE(i, I(3)), LeE(ShrE(i, I(1)), XorE(OrE(i, I(1)), I(2)))))
	b.If(b.T("sel"), func() {
		b.StoreF("o", i, b.T("acc"))
	}, nil)
	b.LiveOut("acc")
	return b.MustBuild()
}

func TestLoopJSONRoundTrip(t *testing.T) {
	l := jsonTestLoop()
	data, err := MarshalLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalLoop(data)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if got, want := Print(back), Print(l); got != want {
		t.Errorf("round-trip changed the loop:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The decoded loop must re-encode to the identical bytes: the encoding
	// is the content-address of the service's compile cache.
	data2, err := MarshalLoop(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-encoding a decoded loop changed the bytes; the encoding is not canonical")
	}
	// Array and scalar data must survive exactly.
	if back.Arrays[0].InitF[1] != 2.5 || back.Arrays[1].InitI[3] != 3 {
		t.Error("array init data corrupted")
	}
	sc, ok := back.Scalar("scale")
	if !ok || sc.F != 1.5 {
		t.Errorf("scalar scale = %+v, want 1.5", sc)
	}
}

func TestLoopJSONDeterministic(t *testing.T) {
	a, err := MarshalLoop(jsonTestLoop())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalLoop(jsonTestLoop())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two marshals of the same loop differ")
	}
}

func TestLoopJSONRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"not json", `{`, "decoding"},
		{"no name", `{"index":"i","start":0,"end":4,"step":1,"body":[]}`, "no name"},
		{"no index", `{"name":"x","start":0,"end":4,"step":1,"body":[]}`, "no index"},
		{"bad step", `{"name":"x","index":"i","start":0,"end":4,"step":0,"body":[]}`, "step"},
		{"bad kind", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"arrays":[{"name":"a","kind":"f32","f64":[1]}],"body":[]}`, "unknown kind"},
		{"kind/data mismatch", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"arrays":[{"name":"a","kind":"i64","f64":[1]}],"body":[]}`, "no i64 data"},
		{"empty expr", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"body":[{"line":1,"assign":{"temp":"t","kind":"f64","expr":{}}}]}`, "exactly one"},
		{"double-tag expr", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"body":[{"line":1,"assign":{"temp":"t","kind":"f64","expr":{"f64":1,"i64":2}}}]}`, "exactly one"},
		{"bad binop", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"body":[{"line":1,"assign":{"temp":"t","kind":"i64","expr":{"bin":{"op":"pow","l":{"i64":1},"r":{"i64":2}}}}}]}`, "unknown binary"},
		{"bin kind mismatch", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"body":[{"line":1,"assign":{"temp":"t","kind":"f64","expr":{"bin":{"op":"add","l":{"f64":1},"r":{"i64":2}}}}}]}`, "kinds differ"},
		{"int-only op on floats", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"body":[{"line":1,"assign":{"temp":"t","kind":"f64","expr":{"bin":{"op":"xor","l":{"f64":1},"r":{"f64":2}}}}}]}`, "requires i64"},
		{"sqrt of int", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"body":[{"line":1,"assign":{"temp":"t","kind":"f64","expr":{"un":{"op":"sqrt","x":{"i64":2}}}}}]}`, "requires an f64"},
		{"assign kind mismatch", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"body":[{"line":1,"assign":{"temp":"t","kind":"i64","expr":{"f64":1}}}]}`, "kind"},
		{"float load index", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"arrays":[{"name":"a","kind":"f64","f64":[1,2,3,4]}],
			"body":[{"line":1,"assign":{"temp":"t","kind":"f64","expr":{"load":{"array":"a","kind":"f64","index":{"f64":0}}}}}]}`, "want i64"},
		{"stmt with both forms", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"body":[{"line":1,"assign":{"temp":"t","kind":"i64","expr":{"i64":1}},"if":{"cond":{"i64":1}}}]}`, "exactly one"},
		{"use before def", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"body":[{"line":1,"assign":{"temp":"t","kind":"f64","expr":{"temp":"u","kind":"f64"}}}]}`, "before definition"},
		{"undeclared array", `{"name":"x","index":"i","start":0,"end":4,"step":1,
			"body":[{"line":1,"assign":{"array":"o","kind":"f64","index":{"temp":"i","kind":"i64"},"expr":{"f64":1}}}]}`, "undeclared array"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := UnmarshalLoop([]byte(c.body))
			if err == nil {
				t.Fatalf("decode accepted bad input %q", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
