package ir

import (
	"strings"
	"testing"
)

func TestExprKinds(t *testing.T) {
	cases := []struct {
		name string
		e    Expr
		want Kind
	}{
		{"float literal", F(1.5), F64},
		{"int literal", I(3), I64},
		{"f64 temp", TF("t"), F64},
		{"i64 temp", TI("n"), I64},
		{"f64 load", LDF("a", I(0)), F64},
		{"i64 load", LDI("idx", I(0)), I64},
		{"add f64", AddE(F(1), F(2)), F64},
		{"add i64", AddE(I(1), I(2)), I64},
		{"compare f64 yields i64", LtE(F(1), F(2)), I64},
		{"compare i64 yields i64", GeE(I(1), I(2)), I64},
		{"neg f64", NegE(F(1)), F64},
		{"neg i64", NegE(I(1)), I64},
		{"not", NotE(I(1)), I64},
		{"sqrt", SqrtE(F(4)), F64},
		{"exp", ExpE(F(0)), F64},
		{"log", LogE(F(1)), F64},
		{"abs f64", AbsE(F(-1)), F64},
		{"abs i64", AbsE(I(-1)), I64},
		{"floor", FloorE(F(1.5)), F64},
		{"itof", IToF(I(3)), F64},
		{"ftoi", FToI(F(3.7)), I64},
		{"min", MinE(F(1), F(2)), F64},
		{"shl", ShlE(I(1), I(3)), I64},
	}
	for _, c := range cases {
		if got := c.e.Kind(); got != c.want {
			t.Errorf("%s: kind = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"add f64+i64", func() { AddE(F(1), I(2)) }},
		{"rem on f64", func() { RemE(F(1), F(2)) }},
		{"and on f64", func() { AndE(F(1), F(2)) }},
		{"not on f64", func() { NotE(F(1)) }},
		{"sqrt on i64", func() { SqrtE(I(4)) }},
		{"itof on f64", func() { IToF(F(1)) }},
		{"ftoi on i64", func() { FToI(I(1)) }},
		{"load float index", func() { LDF("a", F(0)) }},
		{"store float index", func() { DestElemF("a", F(0)) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

func TestExprString(t *testing.T) {
	e := AddE(MulE(TF("a"), F(2)), LDF("x", TI("i")))
	want := "((mul a 2) add x[i])"
	// String uses infix-ish rendering: (l op r).
	got := e.String()
	if !strings.Contains(got, "mul") || !strings.Contains(got, "x[i]") {
		t.Errorf("String() = %q, want something like %q", got, want)
	}
}

func TestBinOpPredicates(t *testing.T) {
	for _, op := range []BinOp{Eq, Ne, Lt, Le, Gt, Ge} {
		if !op.IsCompare() {
			t.Errorf("%s should be a comparison", op)
		}
	}
	for _, op := range []BinOp{Add, Sub, Mul, Div, Min, Max} {
		if op.IsCompare() {
			t.Errorf("%s should not be a comparison", op)
		}
	}
	for _, op := range []BinOp{Rem, And, Or, Xor, Shl, Shr} {
		if !op.IntOnly() {
			t.Errorf("%s should be int-only", op)
		}
	}
	if Add.IntOnly() {
		t.Error("add is not int-only")
	}
}

func buildSimpleLoop(t *testing.T) *Loop {
	t.Helper()
	b := NewBuilder("t", "i", 0, 8, 1)
	b.ArrayF("a", make([]float64, 8))
	b.ArrayF("o", make([]float64, 8))
	i := b.Idx()
	v := b.Def("v", MulE(LDF("a", i), F(2)))
	b.StoreF("o", i, v)
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	l := buildSimpleLoop(t)
	if l.Trips() != 8 {
		t.Errorf("trips = %d, want 8", l.Trips())
	}
	if len(l.Body) != 2 {
		t.Errorf("body has %d stmts, want 2", len(l.Body))
	}
	if l.Array("a") == nil || l.Array("o") == nil || l.Array("zzz") != nil {
		t.Error("Array lookup wrong")
	}
}

func TestBuilderIf(t *testing.T) {
	b := NewBuilder("t", "i", 0, 4, 1)
	b.ArrayF("o", make([]float64, 4))
	i := b.Idx()
	c := b.Def("c", GtE(IToF(i), F(1)))
	b.If(c, func() {
		b.Def("v", F(1))
	}, func() {
		b.Def("v", F(2))
	})
	b.StoreF("o", i, b.T("v"))
	l := b.MustBuild()
	iff, ok := l.Body[1].(*If)
	if !ok {
		t.Fatalf("stmt 1 is %T, want *If", l.Body[1])
	}
	if len(iff.Then) != 1 || len(iff.Else) != 1 {
		t.Errorf("branch sizes %d/%d, want 1/1", len(iff.Then), len(iff.Else))
	}
}

func TestBuilderTmpGeneratesFreshNames(t *testing.T) {
	b := NewBuilder("t", "i", 0, 4, 1)
	b.ArrayF("o", make([]float64, 4))
	x := b.Tmp(F(1))
	y := b.Tmp(F(2))
	if x.(Temp).Name == y.(Temp).Name {
		t.Error("Tmp produced duplicate names")
	}
	b.StoreF("o", b.Idx(), AddE(x, y))
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("undefined temp", func(t *testing.T) {
		b := NewBuilder("t", "i", 0, 4, 1)
		b.ArrayF("o", make([]float64, 4))
		b.StoreF("o", b.Idx(), b.T("nope"))
		if _, err := b.Build(); err == nil {
			t.Error("expected error for undefined temp")
		}
	})
	t.Run("kind change", func(t *testing.T) {
		b := NewBuilder("t", "i", 0, 4, 1)
		b.ArrayF("o", make([]float64, 4))
		b.Def("v", F(1))
		b.Def("v", I(1))
		b.StoreF("o", b.Idx(), b.T("v"))
		if _, err := b.Build(); err == nil {
			t.Error("expected error for kind change")
		}
	})
	t.Run("store kind mismatch", func(t *testing.T) {
		b := NewBuilder("t", "i", 0, 4, 1)
		b.ArrayF("o", make([]float64, 4))
		b.StoreF("o", b.Idx(), I(1))
		if _, err := b.Build(); err == nil {
			t.Error("expected error for store kind mismatch")
		}
	})
}

func TestValidateRejects(t *testing.T) {
	mkLoop := func(f func(b *Builder)) error {
		b := NewBuilder("t", "i", 0, 4, 1)
		b.ArrayF("a", make([]float64, 4))
		f(b)
		_, err := b.Build()
		return err
	}
	t.Run("undeclared array load", func(t *testing.T) {
		err := mkLoop(func(b *Builder) {
			b.StoreF("a", b.Idx(), LDF("missing", b.Idx()))
		})
		if err == nil {
			t.Error("expected error")
		}
	})
	t.Run("undeclared array store", func(t *testing.T) {
		b := NewBuilder("t", "i", 0, 4, 1)
		b.ArrayF("a", make([]float64, 4))
		b.StoreF("missing", b.Idx(), F(1))
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("duplicate array", func(t *testing.T) {
		b := NewBuilder("t", "i", 0, 4, 1)
		b.ArrayF("a", make([]float64, 4))
		b.ArrayF("a", make([]float64, 4))
		b.StoreF("a", b.Idx(), F(1))
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("empty array", func(t *testing.T) {
		b := NewBuilder("t", "i", 0, 4, 1)
		b.ArrayF("a", nil)
		b.StoreF("a", b.Idx(), F(1))
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("liveout never defined", func(t *testing.T) {
		b := NewBuilder("t", "i", 0, 4, 1)
		b.ArrayF("a", make([]float64, 4))
		b.LiveOut("ghost")
		b.StoreF("a", b.Idx(), F(1))
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
}

func TestValidateConditionalDefinition(t *testing.T) {
	// A temp defined in only one branch must not be used after the If.
	b := NewBuilder("t", "i", 0, 4, 1)
	b.ArrayF("o", make([]float64, 4))
	c := b.Def("c", GtE(IToF(b.Idx()), F(1)))
	b.If(c, func() {
		b.Def("v", F(1))
	}, nil)
	b.StoreF("o", b.Idx(), b.T("v"))
	if _, err := b.Build(); err == nil {
		t.Error("expected error: v defined only on the then path")
	}

	// Defined in BOTH branches: fine.
	b2 := NewBuilder("t", "i", 0, 4, 1)
	b2.ArrayF("o", make([]float64, 4))
	c2 := b2.Def("c", GtE(IToF(b2.Idx()), F(1)))
	b2.If(c2, func() {
		b2.Def("v", F(1))
	}, func() {
		b2.Def("v", F(2))
	})
	b2.StoreF("o", b2.Idx(), b2.T("v"))
	if _, err := b2.Build(); err != nil {
		t.Errorf("both-branch definition should validate: %v", err)
	}

	// Defined before the If and conditionally overwritten: fine.
	b3 := NewBuilder("t", "i", 0, 4, 1)
	b3.ArrayF("o", make([]float64, 4))
	b3.Def("v", F(0))
	c3 := b3.Def("c", GtE(IToF(b3.Idx()), F(1)))
	b3.If(c3, func() {
		b3.Def("v", F(1))
	}, nil)
	b3.StoreF("o", b3.Idx(), b3.T("v"))
	if _, err := b3.Build(); err != nil {
		t.Errorf("pre-defined + conditional redefinition should validate: %v", err)
	}
}

func TestValidateStep(t *testing.T) {
	b := NewBuilder("t", "i", 0, 4, 0)
	b.ArrayF("a", make([]float64, 4))
	b.StoreF("a", b.Idx(), F(1))
	if _, err := b.Build(); err == nil {
		t.Error("expected error for zero step")
	}
}

func TestWalkExprPostOrder(t *testing.T) {
	e := AddE(MulE(TF("a"), TF("b")), TF("c"))
	var order []string
	WalkExpr(e, func(n Expr) {
		switch x := n.(type) {
		case Temp:
			order = append(order, x.Name)
		case *Bin:
			order = append(order, x.Op.String())
		}
	})
	want := []string{"a", "b", "mul", "c", "add"}
	if len(order) != len(want) {
		t.Fatalf("visited %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("visited %v, want %v", order, want)
		}
	}
}

func TestCountOpsAndDepth(t *testing.T) {
	e := AddE(MulE(TF("a"), TF("b")), SqrtE(TF("c")))
	if got := CountOps(e); got != 3 {
		t.Errorf("CountOps = %d, want 3", got)
	}
	if got := Depth(e); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	if got := Depth(TF("x")); got != 1 {
		t.Errorf("Depth(leaf) = %d, want 1", got)
	}
	if got := Depth(LDF("a", AddE(TI("i"), I(1)))); got != 3 {
		t.Errorf("Depth(load with computed index) = %d, want 3", got)
	}
}

func TestTempUses(t *testing.T) {
	e := AddE(MulE(TF("a"), TF("b")), LDF("arr", TI("i")))
	uses := map[string]Kind{}
	TempUses(e, uses)
	if len(uses) != 3 {
		t.Fatalf("got %d uses, want 3 (a, b, i)", len(uses))
	}
	if uses["a"] != F64 || uses["i"] != I64 {
		t.Error("wrong kinds recorded")
	}
}

func TestLoopClone(t *testing.T) {
	l := buildSimpleLoop(t)
	c := l.Clone()
	c.Arrays[0].InitF[0] = 99
	if l.Arrays[0].InitF[0] == 99 {
		t.Error("Clone shares array data with the original")
	}
	c.LiveOut = append(c.LiveOut, "x")
	if len(l.LiveOut) != 0 {
		t.Error("Clone shares LiveOut slice")
	}
}

func TestPrintRendersStructure(t *testing.T) {
	b := NewBuilder("show", "i", 0, 4, 1)
	b.ArrayF("a", make([]float64, 4))
	sc := b.ScalarF("s", 1.5)
	c := b.Def("c", GtE(sc, F(1)))
	b.If(c, func() { b.Def("v", F(1)) }, func() { b.Def("v", F(2)) })
	b.StoreF("a", b.Idx(), b.T("v"))
	b.LiveOut("v")
	l := b.MustBuild()
	out := Print(l)
	for _, frag := range []string{"loop show", "array f64 a[4]", "param f64 s = 1.5", "if", "else", "liveout v"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Print missing %q in:\n%s", frag, out)
		}
	}
}

func TestStmtExprs(t *testing.T) {
	b := NewBuilder("t", "i", 0, 4, 1)
	b.ArrayF("a", make([]float64, 4))
	b.StoreF("a", AddE(b.Idx(), I(0)), F(1))
	l := b.MustBuild()
	n := 0
	StmtExprs(l.Body[0], func(Expr) { n++ })
	if n != 2 { // RHS and store index
		t.Errorf("StmtExprs visited %d exprs, want 2", n)
	}
}

func TestTripsEdgeCases(t *testing.T) {
	l := &Loop{Start: 0, End: 10, Step: 3}
	if l.Trips() != 4 {
		t.Errorf("trips(0,10,3) = %d, want 4", l.Trips())
	}
	l = &Loop{Start: 5, End: 5, Step: 1}
	if l.Trips() != 0 {
		t.Errorf("trips(5,5,1) = %d, want 0", l.Trips())
	}
	l = &Loop{Start: 10, End: 0, Step: 1}
	if l.Trips() != 0 {
		t.Errorf("trips(10,0,1) = %d, want 0", l.Trips())
	}
}
