// Package ir defines the source-level intermediate representation consumed by
// the fine-grained parallelizing compiler.
//
// The IR mirrors the shape of code the paper operates on: a single innermost
// loop whose body is a list of assignment statements (expression trees) and
// structured if-then-else statements. Values are either 64-bit floats or
// 64-bit integers; booleans are represented as I64 values 0/1, matching the
// register classes of the simulated machine (FPR and GPR queues).
package ir

import "fmt"

// Kind is the value class of an expression. The simulated hardware has
// separate communication queues for floating-point and general-purpose
// register values, so the compiler tracks the class of every value.
type Kind uint8

const (
	// F64 is a double-precision floating point value (FPR class).
	F64 Kind = iota
	// I64 is a 64-bit integer value (GPR class). Booleans are I64 0/1.
	I64
)

func (k Kind) String() string {
	switch k {
	case F64:
		return "f64"
	case I64:
		return "i64"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem // integer remainder
	Min
	Max
	And // bitwise/logical and (I64)
	Or
	Xor
	Shl
	Shr
	Eq // comparisons produce I64 0/1
	Ne
	Lt
	Le
	Gt
	Ge
)

var binNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	Min: "min", Max: "max", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
}

func (o BinOp) String() string {
	if int(o) < len(binNames) {
		return binNames[o]
	}
	return fmt.Sprintf("bin(%d)", uint8(o))
}

// IsCompare reports whether the operator is a comparison (result kind I64).
func (o BinOp) IsCompare() bool { return o >= Eq && o <= Ge }

// IntOnly reports whether the operator is defined only on I64 operands.
func (o BinOp) IntOnly() bool {
	switch o {
	case Rem, And, Or, Xor, Shl, Shr:
		return true
	}
	return false
}

// UnOp enumerates unary operators and pure intrinsics. The intrinsic set
// (sqrt, exp, log, ...) covers the math that appears in the Sequoia-style
// kernels; all are side-effect free, which matters for the control-flow
// speculation transformation.
type UnOp uint8

const (
	Neg UnOp = iota
	Not      // logical not on I64 0/1
	Sqrt
	Exp
	Log
	Abs
	Floor
	CvtIF // I64 -> F64
	CvtFI // F64 -> I64 (truncate)
)

var unNames = [...]string{
	Neg: "neg", Not: "not", Sqrt: "sqrt", Exp: "exp", Log: "log",
	Abs: "abs", Floor: "floor", CvtIF: "cvtif", CvtFI: "cvtfi",
}

func (o UnOp) String() string {
	if int(o) < len(unNames) {
		return unNames[o]
	}
	return fmt.Sprintf("un(%d)", uint8(o))
}
