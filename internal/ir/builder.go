package ir

import "fmt"

// Builder assembles a Loop with automatically assigned pseudo source line
// numbers and tracked temporary kinds. Kernels and examples use it to keep
// loop definitions short and mistake-resistant.
type Builder struct {
	loop  *Loop
	line  int
	kinds map[string]Kind
	stack [][]Stmt // statement sinks; top of stack receives appends
	errs  []string
	fresh int
}

// NewBuilder starts a loop named name with induction variable index running
// start..end (exclusive) with the given step.
func NewBuilder(name, index string, start, end, step int64) *Builder {
	b := &Builder{
		loop: &Loop{
			Name:  name,
			Index: index,
			Start: start,
			End:   end,
			Step:  step,
		},
		kinds: map[string]Kind{index: I64},
		line:  1,
	}
	b.stack = [][]Stmt{nil}
	return b
}

// Idx returns an expression referencing the induction variable.
func (b *Builder) Idx() Expr { return Temp{b.loop.Index, I64} }

// ArrayF declares an F64 array with the given initial contents.
func (b *Builder) ArrayF(name string, init []float64) {
	b.loop.Arrays = append(b.loop.Arrays, &ArrayDecl{Name: name, K: F64, InitF: init})
}

// ArrayI declares an I64 array with the given initial contents.
func (b *Builder) ArrayI(name string, init []int64) {
	b.loop.Arrays = append(b.loop.Arrays, &ArrayDecl{Name: name, K: I64, InitI: init})
}

// ScalarF declares an F64 region parameter.
func (b *Builder) ScalarF(name string, v float64) Expr {
	b.loop.Scalars = append(b.loop.Scalars, ScalarDecl{Name: name, K: F64, F: v})
	b.kinds[name] = F64
	return Temp{name, F64}
}

// ScalarI declares an I64 region parameter.
func (b *Builder) ScalarI(name string, v int64) Expr {
	b.loop.Scalars = append(b.loop.Scalars, ScalarDecl{Name: name, K: I64, I: v})
	b.kinds[name] = I64
	return Temp{name, I64}
}

// LiveOut marks temporaries as live after the region.
func (b *Builder) LiveOut(names ...string) {
	b.loop.LiveOut = append(b.loop.LiveOut, names...)
}

func (b *Builder) emit(s Stmt) {
	b.stack[len(b.stack)-1] = append(b.stack[len(b.stack)-1], s)
}

func (b *Builder) nextLine() int {
	l := b.line
	b.line++
	return l
}

// Def assigns expr to the named temporary, recording its kind, and returns a
// reference to it.
func (b *Builder) Def(name string, x Expr) Expr {
	if k, ok := b.kinds[name]; ok && k != x.Kind() {
		b.errs = append(b.errs, fmt.Sprintf("temp %s redefined with kind %s (was %s)", name, x.Kind(), k))
	}
	b.kinds[name] = x.Kind()
	b.emit(&Assign{Src: b.nextLine(), Dest: TempDest{name, x.Kind()}, X: x})
	return Temp{name, x.Kind()}
}

// Tmp assigns expr to a fresh compiler-generated temporary and returns a
// reference to it.
func (b *Builder) Tmp(x Expr) Expr {
	b.fresh++
	return b.Def(fmt.Sprintf(".b%d", b.fresh), x)
}

// T returns a reference to a previously defined temporary.
func (b *Builder) T(name string) Expr {
	k, ok := b.kinds[name]
	if !ok {
		b.errs = append(b.errs, fmt.Sprintf("temp %s referenced before definition", name))
		return Temp{name, F64}
	}
	return Temp{name, k}
}

// StoreF emits array[index] = x for an F64 array.
func (b *Builder) StoreF(array string, index, x Expr) {
	if x.Kind() != F64 {
		b.errs = append(b.errs, fmt.Sprintf("storef %s: value kind %s", array, x.Kind()))
	}
	b.emit(&Assign{Src: b.nextLine(), Dest: &ElemDest{Array: array, K: F64, Index: index}, X: x})
}

// StoreI emits array[index] = x for an I64 array.
func (b *Builder) StoreI(array string, index, x Expr) {
	if x.Kind() != I64 {
		b.errs = append(b.errs, fmt.Sprintf("storei %s: value kind %s", array, x.Kind()))
	}
	b.emit(&Assign{Src: b.nextLine(), Dest: &ElemDest{Array: array, K: I64, Index: index}, X: x})
}

// If opens a conditional: then(b) populates the then-branch; the optional
// otherwise func populates the else-branch.
func (b *Builder) If(cond Expr, then func(), otherwise func()) {
	if cond.Kind() != I64 {
		b.errs = append(b.errs, fmt.Sprintf("if condition has kind %s, want i64", cond.Kind()))
	}
	line := b.nextLine()
	b.stack = append(b.stack, nil)
	then()
	thenStmts := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]

	var elseStmts []Stmt
	if otherwise != nil {
		b.stack = append(b.stack, nil)
		otherwise()
		elseStmts = b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
	}
	b.emit(&If{Src: line, Cond: cond, Then: thenStmts, Else: elseStmts})
}

// Build finalizes and validates the loop.
func (b *Builder) Build() (*Loop, error) {
	if len(b.stack) != 1 {
		return nil, fmt.Errorf("ir: unbalanced builder blocks")
	}
	b.loop.Body = b.stack[0]
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("ir: builder errors in %s: %v", b.loop.Name, b.errs)
	}
	if err := Validate(b.loop); err != nil {
		return nil, err
	}
	return b.loop, nil
}

// MustBuild is Build, panicking on error. Kernel definitions are static, so
// a failure is a programming bug.
func (b *Builder) MustBuild() *Loop {
	l, err := b.Build()
	if err != nil {
		panic(err)
	}
	return l
}
