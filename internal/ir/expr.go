package ir

import "fmt"

// Expr is a node in an expression tree. Expression trees are the unit the
// fiber-partitioning algorithm (Section III-A of the paper) operates on:
// leaf nodes are memory loads, scalar/temporary references, or literals, and
// internal nodes are compute operations.
type Expr interface {
	Kind() Kind
	String() string
	exprNode()
}

// ConstF is a float literal.
type ConstF struct{ V float64 }

// ConstI is an integer literal.
type ConstI struct{ V int64 }

// Temp references a loop-local temporary (or the loop index variable, or a
// scalar region parameter). Temporaries are virtual registers: they live in
// core-local registers, and when a value defined on one core is used on
// another the compiler inserts an enqueue/dequeue pair.
type Temp struct {
	Name string
	K    Kind
}

// Load reads one element of a shared-memory array. Loads are leaves in the
// fiber-partitioning sense: they stay unassigned and are issued by whichever
// core consumes them (each core has its own path to shared memory).
type Load struct {
	Array string
	K     Kind
	Index Expr // must have kind I64
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Un applies a unary operator or pure intrinsic.
type Un struct {
	Op UnOp
	X  Expr
}

func (ConstF) exprNode() {}
func (ConstI) exprNode() {}
func (Temp) exprNode()   {}
func (*Load) exprNode()  {}
func (*Bin) exprNode()   {}
func (*Un) exprNode()    {}

// Kind implementations.

func (ConstF) Kind() Kind  { return F64 }
func (ConstI) Kind() Kind  { return I64 }
func (t Temp) Kind() Kind  { return t.K }
func (l *Load) Kind() Kind { return l.K }

func (b *Bin) Kind() Kind {
	if b.Op.IsCompare() {
		return I64
	}
	return b.L.Kind()
}

func (u *Un) Kind() Kind {
	switch u.Op {
	case Not, CvtFI:
		return I64
	case CvtIF:
		return F64
	default:
		return u.X.Kind()
	}
}

// String implementations produce a compact prefix-ish rendering used by the
// compiler dump tools.

func (c ConstF) String() string { return fmt.Sprintf("%g", c.V) }
func (c ConstI) String() string { return fmt.Sprintf("%d", c.V) }
func (t Temp) String() string   { return t.Name }
func (l *Load) String() string  { return fmt.Sprintf("%s[%s]", l.Array, l.Index) }
func (b *Bin) String() string   { return fmt.Sprintf("(%s %s %s)", b.Op, b.L, b.R) }
func (u *Un) String() string    { return fmt.Sprintf("(%s %s)", u.Op, u.X) }

// Constructor helpers. These perform kind checking eagerly and panic on
// mismatches: kernels and examples are authored in Go, so a kind error is a
// programming bug in the caller, not runtime input.

// F returns a float literal.
func F(v float64) Expr { return ConstF{v} }

// I returns an integer literal.
func I(v int64) Expr { return ConstI{v} }

// TF references an F64 temporary.
func TF(name string) Expr { return Temp{name, F64} }

// TI references an I64 temporary.
func TI(name string) Expr { return Temp{name, I64} }

// LDF loads an element of an F64 array.
func LDF(array string, index Expr) Expr { return newLoad(array, F64, index) }

// LDI loads an element of an I64 array.
func LDI(array string, index Expr) Expr { return newLoad(array, I64, index) }

func newLoad(array string, k Kind, index Expr) Expr {
	if index.Kind() != I64 {
		panic(fmt.Sprintf("ir: load %s index has kind %s, want i64", array, index.Kind()))
	}
	return &Load{Array: array, K: k, Index: index}
}

func bin(op BinOp, l, r Expr) Expr {
	if l.Kind() != r.Kind() {
		panic(fmt.Sprintf("ir: %s operand kinds differ: %s vs %s (%s, %s)", op, l.Kind(), r.Kind(), l, r))
	}
	if op.IntOnly() && l.Kind() != I64 {
		panic(fmt.Sprintf("ir: %s requires i64 operands, got %s", op, l.Kind()))
	}
	return &Bin{Op: op, L: l, R: r}
}

// AddE returns l+r. The E suffix avoids clashing with the BinOp constants.
func AddE(l, r Expr) Expr { return bin(Add, l, r) }

// SubE returns l-r.
func SubE(l, r Expr) Expr { return bin(Sub, l, r) }

// MulE returns l*r.
func MulE(l, r Expr) Expr { return bin(Mul, l, r) }

// DivE returns l/r.
func DivE(l, r Expr) Expr { return bin(Div, l, r) }

// RemE returns l%r for integers.
func RemE(l, r Expr) Expr { return bin(Rem, l, r) }

// MinE returns min(l,r).
func MinE(l, r Expr) Expr { return bin(Min, l, r) }

// MaxE returns max(l,r).
func MaxE(l, r Expr) Expr { return bin(Max, l, r) }

// AndE returns l&r for integers.
func AndE(l, r Expr) Expr { return bin(And, l, r) }

// OrE returns l|r for integers.
func OrE(l, r Expr) Expr { return bin(Or, l, r) }

// XorE returns l^r for integers.
func XorE(l, r Expr) Expr { return bin(Xor, l, r) }

// ShlE returns l<<r for integers.
func ShlE(l, r Expr) Expr { return bin(Shl, l, r) }

// ShrE returns l>>r for integers.
func ShrE(l, r Expr) Expr { return bin(Shr, l, r) }

// EqE returns l==r as I64 0/1.
func EqE(l, r Expr) Expr { return bin(Eq, l, r) }

// NeE returns l!=r as I64 0/1.
func NeE(l, r Expr) Expr { return bin(Ne, l, r) }

// LtE returns l<r as I64 0/1.
func LtE(l, r Expr) Expr { return bin(Lt, l, r) }

// LeE returns l<=r as I64 0/1.
func LeE(l, r Expr) Expr { return bin(Le, l, r) }

// GtE returns l>r as I64 0/1.
func GtE(l, r Expr) Expr { return bin(Gt, l, r) }

// GeE returns l>=r as I64 0/1.
func GeE(l, r Expr) Expr { return bin(Ge, l, r) }

func un(op UnOp, x Expr) Expr {
	switch op {
	case Not:
		if x.Kind() != I64 {
			panic("ir: not requires i64 operand")
		}
	case Sqrt, Exp, Log, Floor:
		if x.Kind() != F64 {
			panic(fmt.Sprintf("ir: %s requires f64 operand", op))
		}
	case CvtIF:
		if x.Kind() != I64 {
			panic("ir: cvtif requires i64 operand")
		}
	case CvtFI:
		if x.Kind() != F64 {
			panic("ir: cvtfi requires f64 operand")
		}
	}
	return &Un{Op: op, X: x}
}

// NegE returns -x.
func NegE(x Expr) Expr { return un(Neg, x) }

// NotE returns !x for I64 0/1.
func NotE(x Expr) Expr { return un(Not, x) }

// SqrtE returns sqrt(x).
func SqrtE(x Expr) Expr { return un(Sqrt, x) }

// ExpE returns e**x.
func ExpE(x Expr) Expr { return un(Exp, x) }

// LogE returns ln(x).
func LogE(x Expr) Expr { return un(Log, x) }

// AbsE returns |x|.
func AbsE(x Expr) Expr { return un(Abs, x) }

// FloorE returns floor(x).
func FloorE(x Expr) Expr { return un(Floor, x) }

// IToF converts an I64 value to F64.
func IToF(x Expr) Expr { return un(CvtIF, x) }

// FToI truncates an F64 value to I64.
func FToI(x Expr) Expr { return un(CvtFI, x) }
