package ir

import (
	"fmt"
	"strings"
)

// Print renders the loop as pseudo-source, one statement per line, for the
// compiler inspection tools.
func Print(l *Loop) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loop %s:\n", l.Name)
	for _, a := range l.Arrays {
		fmt.Fprintf(&sb, "  array %s %s[%d]\n", a.K, a.Name, a.Len())
	}
	for _, s := range l.Scalars {
		if s.K == F64 {
			fmt.Fprintf(&sb, "  param %s %s = %g\n", s.K, s.Name, s.F)
		} else {
			fmt.Fprintf(&sb, "  param %s %s = %d\n", s.K, s.Name, s.I)
		}
	}
	fmt.Fprintf(&sb, "  for %s = %d; %s < %d; %s += %d {\n", l.Index, l.Start, l.Index, l.End, l.Index, l.Step)
	printStmts(&sb, l.Body, "    ")
	sb.WriteString("  }\n")
	if len(l.LiveOut) > 0 {
		fmt.Fprintf(&sb, "  liveout %s\n", strings.Join(l.LiveOut, ", "))
	}
	return sb.String()
}

func printStmts(sb *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *Assign:
			fmt.Fprintf(sb, "%s[%3d] %s = %s\n", indent, x.Src, x.Dest, x.X)
		case *If:
			fmt.Fprintf(sb, "%s[%3d] if %s {\n", indent, x.Src, x.Cond)
			printStmts(sb, x.Then, indent+"  ")
			if len(x.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				printStmts(sb, x.Else, indent+"  ")
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		}
	}
}
