package ir

import "fmt"

// Stmt is a statement in a loop body.
type Stmt interface {
	// Line is the pseudo source line number of the statement, used by the
	// source-proximity merge heuristic (Section III-B).
	Line() int
	stmtNode()
}

// Dest is an assignment target: either a temporary or an array element.
type Dest interface {
	Kind() Kind
	String() string
	destNode()
}

// TempDest assigns to a loop-local temporary.
type TempDest struct {
	Name string
	K    Kind
}

// ElemDest stores to an element of a shared-memory array.
type ElemDest struct {
	Array string
	K     Kind
	Index Expr
}

func (TempDest) destNode()  {}
func (*ElemDest) destNode() {}

func (d TempDest) Kind() Kind  { return d.K }
func (d *ElemDest) Kind() Kind { return d.K }

func (d TempDest) String() string  { return d.Name }
func (d *ElemDest) String() string { return fmt.Sprintf("%s[%s]", d.Array, d.Index) }

// Assign evaluates X and writes the result to Dest.
type Assign struct {
	Src  int // pseudo source line
	Dest Dest
	X    Expr
}

// If is a structured conditional. Cond has kind I64 and is interpreted as
// false iff zero. Either branch may be empty.
type If struct {
	Src  int
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*Assign) stmtNode() {}
func (*If) stmtNode()     {}

func (s *Assign) Line() int { return s.Src }
func (s *If) Line() int     { return s.Src }

func (s *Assign) String() string { return fmt.Sprintf("%s = %s", s.Dest, s.X) }

// DestTempF builds an F64 temporary destination.
func DestTempF(name string) Dest { return TempDest{name, F64} }

// DestTempI builds an I64 temporary destination.
func DestTempI(name string) Dest { return TempDest{name, I64} }

// DestElemF builds an F64 array-element destination.
func DestElemF(array string, index Expr) Dest {
	if index.Kind() != I64 {
		panic(fmt.Sprintf("ir: store %s index has kind %s, want i64", array, index.Kind()))
	}
	return &ElemDest{Array: array, K: F64, Index: index}
}

// DestElemI builds an I64 array-element destination.
func DestElemI(array string, index Expr) Dest {
	if index.Kind() != I64 {
		panic(fmt.Sprintf("ir: store %s index has kind %s, want i64", array, index.Kind()))
	}
	return &ElemDest{Array: array, K: I64, Index: index}
}
