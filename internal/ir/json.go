// JSON wire format for loops. The compile-and-simulate service accepts
// kernels over HTTP in this encoding, and the content-addressed compile
// cache hashes it: MarshalLoop is deterministic (fixed field order, no
// maps), so structurally identical loops produce byte-identical encodings.
//
// The schema mirrors the IR one-to-one. Expressions are tagged unions with
// exactly one populated field:
//
//	{"f64": 1.5}                         ConstF
//	{"i64": 3}                           ConstI
//	{"temp": "x", "kind": "f64"}         Temp
//	{"load": {"array": "a", "kind": "f64", "index": <expr>}}
//	{"bin": {"op": "add", "l": <expr>, "r": <expr>}}
//	{"un": {"op": "sqrt", "x": <expr>}}
//
// Statements carry their pseudo source line plus either an assignment (to a
// temp or an array element) or a structured conditional. UnmarshalLoop
// kind-checks every node as it rebuilds the tree (the Go constructors panic
// on misuse because kernels are authored in-process; wire input is
// untrusted, so the decoder returns errors instead) and finishes with
// Validate, so a decoded loop is as trustworthy as a built one.
package ir

import (
	"encoding/json"
	"fmt"
	"math"
)

// jsonF64 carries float64 values across the wire. Finite values encode as
// plain JSON numbers (byte-identical to encoding/json's default, so content
// addresses of pre-existing loops are unchanged); NaN and the infinities —
// which bare JSON cannot represent — encode as the strings "nan", "inf" and
// "-inf", matching the source-language literals. All NaN payloads collapse
// to the quiet NaN, so loops differing only in NaN bits share an address.
type jsonF64 float64

func (v jsonF64) MarshalJSON() ([]byte, error) {
	f := float64(v)
	switch {
	case math.IsNaN(f):
		return []byte(`"nan"`), nil
	case math.IsInf(f, 1):
		return []byte(`"inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-inf"`), nil
	}
	return json.Marshal(f)
}

func (v *jsonF64) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		switch s {
		case "nan":
			*v = jsonF64(math.NaN())
		case "inf":
			*v = jsonF64(math.Inf(1))
		case "-inf":
			*v = jsonF64(math.Inf(-1))
		default:
			return fmt.Errorf("invalid f64 value %q (want a number, \"nan\", \"inf\" or \"-inf\")", s)
		}
		return nil
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	*v = jsonF64(f)
	return nil
}

func toJSONF64s(fs []float64) []jsonF64 {
	if fs == nil {
		return nil
	}
	out := make([]jsonF64, len(fs))
	for i, f := range fs {
		out[i] = jsonF64(f)
	}
	return out
}

func fromJSONF64s(fs []jsonF64) []float64 {
	if fs == nil {
		return nil
	}
	out := make([]float64, len(fs))
	for i, f := range fs {
		out[i] = float64(f)
	}
	return out
}

type jsonLoop struct {
	Name    string       `json:"name"`
	Index   string       `json:"index"`
	Start   int64        `json:"start"`
	End     int64        `json:"end"`
	Step    int64        `json:"step"`
	Arrays  []jsonArray  `json:"arrays,omitempty"`
	Scalars []jsonScalar `json:"scalars,omitempty"`
	Body    []jsonStmt   `json:"body"`
	LiveOut []string     `json:"liveout,omitempty"`
}

type jsonArray struct {
	Name string    `json:"name"`
	Kind string    `json:"kind"`
	F64  []jsonF64 `json:"f64,omitempty"`
	I64  []int64   `json:"i64,omitempty"`
}

type jsonScalar struct {
	Name string   `json:"name"`
	Kind string   `json:"kind"`
	F64  *jsonF64 `json:"f64,omitempty"`
	I64  *int64   `json:"i64,omitempty"`
}

type jsonStmt struct {
	Line   int         `json:"line"`
	Assign *jsonAssign `json:"assign,omitempty"`
	If     *jsonIf     `json:"if,omitempty"`
}

// jsonAssign writes Expr to a temp (Temp set) or array element (Array and
// Index set); exactly one destination form must be present.
type jsonAssign struct {
	Temp  string    `json:"temp,omitempty"`
	Array string    `json:"array,omitempty"`
	Kind  string    `json:"kind"`
	Index *jsonExpr `json:"index,omitempty"`
	Expr  jsonExpr  `json:"expr"`
}

type jsonIf struct {
	Cond jsonExpr   `json:"cond"`
	Then []jsonStmt `json:"then,omitempty"`
	Else []jsonStmt `json:"else,omitempty"`
}

type jsonExpr struct {
	F64  *jsonF64  `json:"f64,omitempty"`
	I64  *int64    `json:"i64,omitempty"`
	Temp string    `json:"temp,omitempty"`
	Kind string    `json:"kind,omitempty"`
	Load *jsonLoad `json:"load,omitempty"`
	Bin  *jsonBin  `json:"bin,omitempty"`
	Un   *jsonUn   `json:"un,omitempty"`
}

type jsonLoad struct {
	Array string   `json:"array"`
	Kind  string   `json:"kind"`
	Index jsonExpr `json:"index"`
}

type jsonBin struct {
	Op string   `json:"op"`
	L  jsonExpr `json:"l"`
	R  jsonExpr `json:"r"`
}

type jsonUn struct {
	Op string   `json:"op"`
	X  jsonExpr `json:"x"`
}

// MarshalLoop encodes the loop as deterministic JSON: the same loop always
// yields the same bytes, making the encoding usable as a content-address.
func MarshalLoop(l *Loop) ([]byte, error) {
	jl := jsonLoop{
		Name: l.Name, Index: l.Index,
		Start: l.Start, End: l.End, Step: l.Step,
		LiveOut: l.LiveOut,
	}
	for _, a := range l.Arrays {
		ja := jsonArray{Name: a.Name, Kind: a.K.String()}
		if a.K == F64 {
			ja.F64 = toJSONF64s(a.InitF)
		} else {
			ja.I64 = a.InitI
		}
		jl.Arrays = append(jl.Arrays, ja)
	}
	for _, s := range l.Scalars {
		js := jsonScalar{Name: s.Name, Kind: s.K.String()}
		if s.K == F64 {
			f := jsonF64(s.F)
			js.F64 = &f
		} else {
			i := s.I
			js.I64 = &i
		}
		jl.Scalars = append(jl.Scalars, js)
	}
	body, err := encodeStmts(l.Body)
	if err != nil {
		return nil, err
	}
	jl.Body = body
	return json.Marshal(jl)
}

func encodeStmts(stmts []Stmt) ([]jsonStmt, error) {
	var out []jsonStmt
	for _, s := range stmts {
		switch x := s.(type) {
		case *Assign:
			ja := &jsonAssign{}
			switch d := x.Dest.(type) {
			case TempDest:
				ja.Temp, ja.Kind = d.Name, d.K.String()
			case *ElemDest:
				idx, err := encodeExpr(d.Index)
				if err != nil {
					return nil, err
				}
				ja.Array, ja.Kind, ja.Index = d.Array, d.K.String(), &idx
			default:
				return nil, fmt.Errorf("ir: unknown destination type %T", x.Dest)
			}
			e, err := encodeExpr(x.X)
			if err != nil {
				return nil, err
			}
			ja.Expr = e
			out = append(out, jsonStmt{Line: x.Src, Assign: ja})
		case *If:
			cond, err := encodeExpr(x.Cond)
			if err != nil {
				return nil, err
			}
			then, err := encodeStmts(x.Then)
			if err != nil {
				return nil, err
			}
			els, err := encodeStmts(x.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, jsonStmt{Line: x.Src, If: &jsonIf{Cond: cond, Then: then, Else: els}})
		default:
			return nil, fmt.Errorf("ir: unknown statement type %T", s)
		}
	}
	return out, nil
}

func encodeExpr(e Expr) (jsonExpr, error) {
	switch x := e.(type) {
	case ConstF:
		v := jsonF64(x.V)
		return jsonExpr{F64: &v}, nil
	case ConstI:
		v := x.V
		return jsonExpr{I64: &v}, nil
	case Temp:
		return jsonExpr{Temp: x.Name, Kind: x.K.String()}, nil
	case *Load:
		idx, err := encodeExpr(x.Index)
		if err != nil {
			return jsonExpr{}, err
		}
		return jsonExpr{Load: &jsonLoad{Array: x.Array, Kind: x.K.String(), Index: idx}}, nil
	case *Bin:
		l, err := encodeExpr(x.L)
		if err != nil {
			return jsonExpr{}, err
		}
		r, err := encodeExpr(x.R)
		if err != nil {
			return jsonExpr{}, err
		}
		return jsonExpr{Bin: &jsonBin{Op: x.Op.String(), L: l, R: r}}, nil
	case *Un:
		v, err := encodeExpr(x.X)
		if err != nil {
			return jsonExpr{}, err
		}
		return jsonExpr{Un: &jsonUn{Op: x.Op.String(), X: v}}, nil
	}
	return jsonExpr{}, fmt.Errorf("ir: unknown expression type %T", e)
}

// UnmarshalLoop decodes and validates a loop from its JSON encoding. Every
// node is kind-checked during decoding, and the finished loop passes
// Validate, so the result is safe to hand to the compiler pipeline.
func UnmarshalLoop(data []byte) (*Loop, error) {
	var jl jsonLoop
	if err := json.Unmarshal(data, &jl); err != nil {
		return nil, fmt.Errorf("ir: decoding loop: %w", err)
	}
	if jl.Name == "" {
		return nil, fmt.Errorf("ir: loop has no name")
	}
	if jl.Index == "" {
		return nil, fmt.Errorf("ir: loop %q has no index variable", jl.Name)
	}
	l := &Loop{
		Name: jl.Name, Index: jl.Index,
		Start: jl.Start, End: jl.End, Step: jl.Step,
		LiveOut: jl.LiveOut,
	}
	for _, ja := range jl.Arrays {
		k, err := decodeKind(ja.Kind)
		if err != nil {
			return nil, fmt.Errorf("ir: array %q: %w", ja.Name, err)
		}
		a := &ArrayDecl{Name: ja.Name, K: k}
		if k == F64 {
			if ja.F64 == nil {
				return nil, fmt.Errorf("ir: f64 array %q has no f64 data", ja.Name)
			}
			a.InitF = fromJSONF64s(ja.F64)
		} else {
			if ja.I64 == nil {
				return nil, fmt.Errorf("ir: i64 array %q has no i64 data", ja.Name)
			}
			a.InitI = ja.I64
		}
		l.Arrays = append(l.Arrays, a)
	}
	for _, js := range jl.Scalars {
		k, err := decodeKind(js.Kind)
		if err != nil {
			return nil, fmt.Errorf("ir: scalar %q: %w", js.Name, err)
		}
		s := ScalarDecl{Name: js.Name, K: k}
		if k == F64 {
			if js.F64 == nil {
				return nil, fmt.Errorf("ir: f64 scalar %q has no f64 value", js.Name)
			}
			s.F = float64(*js.F64)
		} else {
			if js.I64 == nil {
				return nil, fmt.Errorf("ir: i64 scalar %q has no i64 value", js.Name)
			}
			s.I = *js.I64
		}
		l.Scalars = append(l.Scalars, s)
	}
	body, err := decodeStmts(jl.Body)
	if err != nil {
		return nil, err
	}
	l.Body = body
	if err := Validate(l); err != nil {
		return nil, err
	}
	return l, nil
}

func decodeKind(s string) (Kind, error) {
	switch s {
	case "f64":
		return F64, nil
	case "i64":
		return I64, nil
	}
	return F64, fmt.Errorf("unknown kind %q (want \"f64\" or \"i64\")", s)
}

func decodeStmts(stmts []jsonStmt) ([]Stmt, error) {
	var out []Stmt
	for i, js := range stmts {
		switch {
		case js.Assign != nil && js.If == nil:
			ja := js.Assign
			x, err := decodeExpr(ja.Expr)
			if err != nil {
				return nil, fmt.Errorf("ir: line %d: %w", js.Line, err)
			}
			k, err := decodeKind(ja.Kind)
			if err != nil {
				return nil, fmt.Errorf("ir: line %d: %w", js.Line, err)
			}
			if x.Kind() != k {
				return nil, fmt.Errorf("ir: line %d: assignment kind %s but expression kind %s", js.Line, k, x.Kind())
			}
			var dest Dest
			switch {
			case ja.Temp != "" && ja.Array == "":
				dest = TempDest{Name: ja.Temp, K: k}
			case ja.Array != "" && ja.Temp == "":
				if ja.Index == nil {
					return nil, fmt.Errorf("ir: line %d: store to %q has no index", js.Line, ja.Array)
				}
				idx, err := decodeExpr(*ja.Index)
				if err != nil {
					return nil, fmt.Errorf("ir: line %d: %w", js.Line, err)
				}
				if idx.Kind() != I64 {
					return nil, fmt.Errorf("ir: line %d: store index has kind %s, want i64", js.Line, idx.Kind())
				}
				dest = &ElemDest{Array: ja.Array, K: k, Index: idx}
			default:
				return nil, fmt.Errorf("ir: line %d: assignment needs exactly one of \"temp\" or \"array\"", js.Line)
			}
			out = append(out, &Assign{Src: js.Line, Dest: dest, X: x})
		case js.If != nil && js.Assign == nil:
			cond, err := decodeExpr(js.If.Cond)
			if err != nil {
				return nil, fmt.Errorf("ir: line %d: %w", js.Line, err)
			}
			if cond.Kind() != I64 {
				return nil, fmt.Errorf("ir: line %d: if condition has kind %s, want i64", js.Line, cond.Kind())
			}
			then, err := decodeStmts(js.If.Then)
			if err != nil {
				return nil, err
			}
			els, err := decodeStmts(js.If.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, &If{Src: js.Line, Cond: cond, Then: then, Else: els})
		default:
			return nil, fmt.Errorf("ir: statement %d needs exactly one of \"assign\" or \"if\"", i)
		}
	}
	return out, nil
}

func decodeExpr(je jsonExpr) (Expr, error) {
	n := 0
	if je.F64 != nil {
		n++
	}
	if je.I64 != nil {
		n++
	}
	if je.Temp != "" {
		n++
	}
	if je.Load != nil {
		n++
	}
	if je.Bin != nil {
		n++
	}
	if je.Un != nil {
		n++
	}
	if n != 1 {
		return nil, fmt.Errorf("expression needs exactly one of f64/i64/temp/load/bin/un, has %d", n)
	}
	switch {
	case je.F64 != nil:
		return ConstF{float64(*je.F64)}, nil
	case je.I64 != nil:
		return ConstI{*je.I64}, nil
	case je.Temp != "":
		k, err := decodeKind(je.Kind)
		if err != nil {
			return nil, fmt.Errorf("temp %q: %w", je.Temp, err)
		}
		return Temp{Name: je.Temp, K: k}, nil
	case je.Load != nil:
		k, err := decodeKind(je.Load.Kind)
		if err != nil {
			return nil, fmt.Errorf("load %q: %w", je.Load.Array, err)
		}
		idx, err := decodeExpr(je.Load.Index)
		if err != nil {
			return nil, err
		}
		if idx.Kind() != I64 {
			return nil, fmt.Errorf("load %q index has kind %s, want i64", je.Load.Array, idx.Kind())
		}
		return &Load{Array: je.Load.Array, K: k, Index: idx}, nil
	case je.Bin != nil:
		op, err := decodeBinOp(je.Bin.Op)
		if err != nil {
			return nil, err
		}
		left, err := decodeExpr(je.Bin.L)
		if err != nil {
			return nil, err
		}
		right, err := decodeExpr(je.Bin.R)
		if err != nil {
			return nil, err
		}
		if left.Kind() != right.Kind() {
			return nil, fmt.Errorf("%s operand kinds differ: %s vs %s", op, left.Kind(), right.Kind())
		}
		if op.IntOnly() && left.Kind() != I64 {
			return nil, fmt.Errorf("%s requires i64 operands, got %s", op, left.Kind())
		}
		return &Bin{Op: op, L: left, R: right}, nil
	default:
		op, err := decodeUnOp(je.Un.Op)
		if err != nil {
			return nil, err
		}
		x, err := decodeExpr(je.Un.X)
		if err != nil {
			return nil, err
		}
		switch op {
		case Not, CvtIF:
			if x.Kind() != I64 {
				return nil, fmt.Errorf("%s requires an i64 operand, got %s", op, x.Kind())
			}
		case Sqrt, Exp, Log, Floor, CvtFI:
			if x.Kind() != F64 {
				return nil, fmt.Errorf("%s requires an f64 operand, got %s", op, x.Kind())
			}
		}
		return &Un{Op: op, X: x}, nil
	}
}

func decodeBinOp(name string) (BinOp, error) {
	for op, n := range binNames {
		if n == name {
			return BinOp(op), nil
		}
	}
	return 0, fmt.Errorf("unknown binary operator %q", name)
}

func decodeUnOp(name string) (UnOp, error) {
	for op, n := range unNames {
		if n == name {
			return UnOp(op), nil
		}
	}
	return 0, fmt.Errorf("unknown unary operator %q", name)
}
