package ir

import "fmt"

// ArrayDecl declares a shared-memory array used by a loop. Init holds the
// initial contents; its length fixes the array length. Exactly one of InitF
// and InitI is non-nil, matching K.
type ArrayDecl struct {
	Name  string
	K     Kind
	InitF []float64
	InitI []int64
}

// Len returns the number of elements in the array.
func (a *ArrayDecl) Len() int {
	if a.K == F64 {
		return len(a.InitF)
	}
	return len(a.InitI)
}

// ScalarDecl declares a read-only scalar live-in to the loop region (a
// "region parameter"). At runtime the primary thread transfers parameter
// values to each secondary thread that uses them, mirroring the argument
// transfer in Section III-G of the paper.
type ScalarDecl struct {
	Name string
	K    Kind
	F    float64
	I    int64
}

// Loop is the unit of compilation: one innermost counted loop, plus the data
// environment it runs against. This mirrors the paper's methodology, where
// each hot loop is extracted into a standalone kernel with its
// initialization code.
type Loop struct {
	Name string

	// Index is the name of the induction variable (kind I64). The loop runs
	// for Index = Start; Index < End; Index += Step. Loop control is
	// replicated on every core, so the induction variable is available
	// everywhere without communication.
	Index string
	Start int64
	End   int64
	Step  int64

	Body []Stmt

	Arrays  []*ArrayDecl
	Scalars []ScalarDecl

	// LiveOut names temporaries whose final values are needed after the
	// region exits. The compiler copies them back to the primary core
	// (Section III-F).
	LiveOut []string
}

// Trips returns the number of iterations the loop executes.
func (l *Loop) Trips() int64 {
	if l.Step <= 0 {
		return 0
	}
	n := (l.End - l.Start + l.Step - 1) / l.Step
	if n < 0 {
		return 0
	}
	return n
}

// Array returns the declaration for the named array, or nil.
func (l *Loop) Array(name string) *ArrayDecl {
	for _, a := range l.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Scalar returns the declaration for the named scalar and whether it exists.
func (l *Loop) Scalar(name string) (ScalarDecl, bool) {
	for _, s := range l.Scalars {
		if s.Name == name {
			return s, true
		}
	}
	return ScalarDecl{}, false
}

// Clone returns a deep copy of the loop's structure. Statement and
// expression nodes are immutable by convention once built, so they are
// shared; array init data is copied because simulator runs mutate memory
// images derived from it.
func (l *Loop) Clone() *Loop {
	c := *l
	c.Body = append([]Stmt(nil), l.Body...)
	c.Arrays = make([]*ArrayDecl, len(l.Arrays))
	for i, a := range l.Arrays {
		na := *a
		na.InitF = append([]float64(nil), a.InitF...)
		na.InitI = append([]int64(nil), a.InitI...)
		c.Arrays[i] = &na
	}
	c.Scalars = append([]ScalarDecl(nil), l.Scalars...)
	c.LiveOut = append([]string(nil), l.LiveOut...)
	return &c
}

func (l *Loop) String() string {
	return fmt.Sprintf("loop %s: for %s = %d..%d step %d, %d stmts, %d arrays",
		l.Name, l.Index, l.Start, l.End, l.Step, len(l.Body), len(l.Arrays))
}
