package ir

// WalkExpr calls f for every node of the expression tree in post-order
// (children before parents), matching the traversal order of the fiber
// partitioning algorithm.
func WalkExpr(e Expr, f func(Expr)) {
	switch x := e.(type) {
	case *Bin:
		WalkExpr(x.L, f)
		WalkExpr(x.R, f)
	case *Un:
		WalkExpr(x.X, f)
	case *Load:
		WalkExpr(x.Index, f)
	}
	f(e)
}

// WalkStmts calls f for every statement, recursing into conditionals.
func WalkStmts(stmts []Stmt, f func(Stmt)) {
	for _, s := range stmts {
		f(s)
		if iff, ok := s.(*If); ok {
			WalkStmts(iff.Then, f)
			WalkStmts(iff.Else, f)
		}
	}
}

// StmtExprs calls f for every top-level expression of a statement: the RHS,
// the store index (if any), and the condition (for If). It does not recurse
// into branch bodies.
func StmtExprs(s Stmt, f func(Expr)) {
	switch x := s.(type) {
	case *Assign:
		f(x.X)
		if ed, ok := x.Dest.(*ElemDest); ok {
			f(ed.Index)
		}
	case *If:
		f(x.Cond)
	}
}

// TempUses collects the names of all temporaries read anywhere in the
// expression.
func TempUses(e Expr, into map[string]Kind) {
	WalkExpr(e, func(n Expr) {
		if t, ok := n.(Temp); ok {
			into[t.Name] = t.K
		}
	})
}

// CountStmts returns the number of statements in the list, recursing into
// conditional branches. The fuzz shrinker uses it as the size metric a
// minimization step must strictly decrease.
func CountStmts(stmts []Stmt) int {
	n := 0
	WalkStmts(stmts, func(Stmt) { n++ })
	return n
}

// CountLoopOps returns the total number of compute operations across every
// expression of the loop body (RHSes, store indices, branch conditions).
func CountLoopOps(l *Loop) int {
	n := 0
	WalkStmts(l.Body, func(s Stmt) {
		StmtExprs(s, func(e Expr) { n += CountOps(e) })
	})
	return n
}

// CountOps returns the number of compute operations (internal nodes,
// excluding loads) in the expression tree.
func CountOps(e Expr) int {
	n := 0
	WalkExpr(e, func(x Expr) {
		switch x.(type) {
		case *Bin, *Un:
			n++
		}
	})
	return n
}

// Depth returns the height of the expression tree (a leaf has depth 1).
func Depth(e Expr) int {
	switch x := e.(type) {
	case *Bin:
		l, r := Depth(x.L), Depth(x.R)
		if r > l {
			l = r
		}
		return l + 1
	case *Un:
		return Depth(x.X) + 1
	case *Load:
		return Depth(x.Index) + 1
	default:
		return 1
	}
}
