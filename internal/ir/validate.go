package ir

import (
	"fmt"
	"sort"
)

// Validate checks structural invariants of a loop:
//   - every referenced array is declared, with consistent kinds;
//   - every temporary is defined before use on all paths (scalars and the
//     induction variable count as defined);
//   - temporaries keep a single kind;
//   - temporaries defined only inside a conditional are not used outside it
//     unless also defined before the conditional (otherwise some execution
//     path would read an undefined value);
//   - live-out temporaries are defined somewhere in the body.
func Validate(l *Loop) error {
	v := &validator{loop: l, kinds: map[string]Kind{}, arrays: map[string]Kind{}}
	for _, a := range l.Arrays {
		if _, dup := v.arrays[a.Name]; dup {
			return fmt.Errorf("ir: %s: array %q declared twice", l.Name, a.Name)
		}
		if a.Len() == 0 {
			return fmt.Errorf("ir: %s: array %q has no elements", l.Name, a.Name)
		}
		v.arrays[a.Name] = a.K
	}
	defined := map[string]bool{l.Index: true}
	v.kinds[l.Index] = I64
	for _, s := range l.Scalars {
		if defined[s.Name] {
			return fmt.Errorf("ir: %s: scalar %q declared twice", l.Name, s.Name)
		}
		defined[s.Name] = true
		v.kinds[s.Name] = s.K
	}
	if l.Step <= 0 {
		return fmt.Errorf("ir: %s: step must be positive, got %d", l.Name, l.Step)
	}
	// Iteration 1: definitions from a previous iteration are visible, so
	// validate twice: first pass collects all defs (loop-carried temps are
	// defined by iteration end), second pass checks uses. A temp is valid if
	// defined before use within one iteration OR defined unconditionally
	// somewhere (loop-carried) — but loop-carried first-iteration reads need
	// an initial value, which we require to come from a scalar param. To keep
	// kernels honest we require strict define-before-use within an iteration;
	// accumulators must be declared as scalars (their initial value).
	if err := v.checkStmts(l.Body, defined); err != nil {
		return fmt.Errorf("ir: %s: %w", l.Name, err)
	}
	for _, name := range l.LiveOut {
		if !v.everDefined[name] {
			return fmt.Errorf("ir: %s: live-out %q is never defined", l.Name, name)
		}
	}
	return nil
}

type validator struct {
	loop        *Loop
	kinds       map[string]Kind
	arrays      map[string]Kind
	everDefined map[string]bool
}

func (v *validator) checkStmts(stmts []Stmt, defined map[string]bool) error {
	if v.everDefined == nil {
		v.everDefined = map[string]bool{}
	}
	for _, s := range stmts {
		switch x := s.(type) {
		case *Assign:
			if err := v.checkExpr(x.X, defined); err != nil {
				return fmt.Errorf("line %d: %w", x.Src, err)
			}
			switch d := x.Dest.(type) {
			case TempDest:
				if k, ok := v.kinds[d.Name]; ok && k != d.K {
					return fmt.Errorf("line %d: temp %q kind changes %s -> %s", x.Src, d.Name, k, d.K)
				}
				if d.K != x.X.Kind() {
					return fmt.Errorf("line %d: assign to %q: kind %s = %s", x.Src, d.Name, d.K, x.X.Kind())
				}
				v.kinds[d.Name] = d.K
				defined[d.Name] = true
				v.everDefined[d.Name] = true
			case *ElemDest:
				ak, ok := v.arrays[d.Array]
				if !ok {
					return fmt.Errorf("line %d: store to undeclared array %q", x.Src, d.Array)
				}
				if ak != d.K || ak != x.X.Kind() {
					return fmt.Errorf("line %d: store to %q kind mismatch", x.Src, d.Array)
				}
				if err := v.checkExpr(d.Index, defined); err != nil {
					return fmt.Errorf("line %d: %w", x.Src, err)
				}
			}
		case *If:
			if err := v.checkExpr(x.Cond, defined); err != nil {
				return fmt.Errorf("line %d: %w", x.Src, err)
			}
			// Each branch sees the defs so far; defs made in a branch are
			// visible after the If only if made in BOTH branches.
			thenDef := copyDefs(defined)
			if err := v.checkStmts(x.Then, thenDef); err != nil {
				return err
			}
			elseDef := copyDefs(defined)
			if err := v.checkStmts(x.Else, elseDef); err != nil {
				return err
			}
			for _, name := range sortedKeys(thenDef) {
				if thenDef[name] && elseDef[name] {
					defined[name] = true
				}
			}
		default:
			return fmt.Errorf("unknown statement type %T", s)
		}
	}
	return nil
}

func (v *validator) checkExpr(e Expr, defined map[string]bool) error {
	var err error
	WalkExpr(e, func(n Expr) {
		if err != nil {
			return
		}
		switch x := n.(type) {
		case Temp:
			if !defined[x.Name] {
				err = fmt.Errorf("temp %q used before definition", x.Name)
				return
			}
			if k, ok := v.kinds[x.Name]; ok && k != x.K {
				err = fmt.Errorf("temp %q used with kind %s, defined as %s", x.Name, x.K, k)
			}
		case *Load:
			ak, ok := v.arrays[x.Array]
			if !ok {
				err = fmt.Errorf("load from undeclared array %q", x.Array)
				return
			}
			if ak != x.K {
				err = fmt.Errorf("load from %q with kind %s, declared %s", x.Array, x.K, ak)
			}
		}
	})
	return err
}

func copyDefs(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
