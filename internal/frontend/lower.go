// The lowering pass: AST to a validated *ir.Loop. It mirrors ir.Validate's
// semantic rules — declared arrays, strict define-before-use, one kind per
// temporary, both-branch visibility after an if, live-outs defined — but
// reports them as positioned diagnostics instead of a single error, and
// keeps going after each one so a review pass over the source sees every
// problem at once. ir.Validate still runs on the finished loop as a safety
// net: any loop this pass accepts is exactly as trustworthy as a decoded
// wire loop.
//
// Statement pseudo-lines (ir.Stmt.Line, the source-proximity merge
// heuristic's input) are assigned by pre-order ordinal starting at 1 — the
// same numbering ir.Builder produces — unless a statement carries an
// explicit `@N` annotation. Loops whose lines already follow the builder
// convention therefore format without annotations and reparse identically.

package frontend

import (
	"sort"

	"fgp/internal/ir"
)

type lowerer struct {
	sc  *source
	lim Limits

	diags  []Diagnostic
	full   bool
	arrays map[string]ir.Kind
	kinds  map[string]ir.Kind // temps, params and the induction variable
	ever   map[string]bool    // everDefined, for live_out checking
	index  string

	ordinal int // pre-order statement counter
}

func lower(f *file, sc *source, lim Limits) (*ir.Loop, []Diagnostic) {
	lo := &lowerer{
		sc: sc, lim: lim,
		arrays: map[string]ir.Kind{},
		kinds:  map[string]ir.Kind{},
		ever:   map[string]bool{},
	}
	l := lo.run(f)
	if len(lo.diags) > 0 {
		return nil, lo.diags
	}
	// Safety net: the checks above are intended to be exhaustive, so a
	// Validate failure here is a frontend bug — but it must still surface
	// as a diagnostic, never as a panic further down the pipeline.
	if err := ir.Validate(l); err != nil {
		lo.errorf(f.loop.pos, "lowered loop failed IR validation: %v", err)
		return nil, lo.diags
	}
	return l, nil
}

func (lo *lowerer) errorf(at pos, format string, args ...any) {
	if lo.full {
		return
	}
	if len(lo.diags) >= lo.lim.MaxDiags {
		lo.diags = append(lo.diags, lo.sc.diag(at, "too many errors; giving up"))
		lo.full = true
		return
	}
	lo.diags = append(lo.diags, lo.sc.diag(at, format, args...))
}

func (lo *lowerer) run(f *file) *ir.Loop {
	l := &ir.Loop{Name: "source"}
	if f.hasName {
		if f.name == "" {
			lo.errorf(f.namePos, "kernel name must not be empty")
		} else {
			l.Name = f.name
		}
	}

	for _, pd := range f.params {
		if _, dup := lo.kinds[pd.name]; dup {
			lo.errorf(pd.npos, "param %q declared twice", pd.name)
			continue
		}
		sd := ir.ScalarDecl{Name: pd.name, K: pd.kind}
		switch {
		case pd.kind == ir.F64:
			if pd.val.isFloat {
				sd.F = pd.val.f
			} else {
				sd.F = float64(pd.val.i) // int literal for an f64 param
			}
		case pd.val.isFloat:
			lo.errorf(pd.val.pos, "param %q is i64 but its value is a float literal", pd.name)
			continue
		default:
			sd.I = pd.val.i
		}
		lo.kinds[pd.name] = pd.kind
		l.Scalars = append(l.Scalars, sd)
	}

	for _, ad := range f.arrays {
		if _, dup := lo.arrays[ad.name]; dup {
			lo.errorf(ad.npos, "array %q declared twice", ad.name)
			continue
		}
		if len(ad.items) == 0 {
			lo.errorf(ad.pos, "array %q has no elements; arrays carry their data inline", ad.name)
			continue
		}
		decl := &ir.ArrayDecl{Name: ad.name, K: ad.kind}
		bad := false
		for i, it := range ad.items {
			if ad.kind == ir.F64 {
				v := it.f
				if !it.isFloat {
					v = float64(it.i)
				}
				decl.InitF = append(decl.InitF, v)
			} else if it.isFloat {
				lo.errorf(it.pos, "array %q is i64 but element %d is a float literal", ad.name, i)
				bad = true
				break
			} else {
				decl.InitI = append(decl.InitI, it.i)
			}
		}
		if bad {
			continue
		}
		lo.arrays[ad.name] = ad.kind
		l.Arrays = append(l.Arrays, decl)
	}

	ld := f.loop
	if ld == nil {
		return l // parse already reported the missing loop
	}
	lo.index = ld.index
	if _, isParam := lo.kinds[ld.index]; isParam {
		lo.errorf(ld.ipos, "induction variable %q collides with a param", ld.index)
	}
	if ld.step <= 0 {
		lo.errorf(ld.pos, "the loop step must be positive (counted ascending loops only), got %d", ld.step)
	}
	l.Index, l.Start, l.End, l.Step = ld.index, ld.start, ld.end, ld.step
	lo.kinds[ld.index] = ir.I64

	defined := map[string]bool{ld.index: true}
	for name := range lo.kinds {
		defined[name] = true
	}
	l.Body = lo.stmts(ld.body, defined)

	for _, lv := range f.liveOut {
		if !lo.ever[lv.name] {
			lo.errorf(lv.pos, "live_out %q is never assigned in the loop body", lv.name)
			continue
		}
		l.LiveOut = append(l.LiveOut, lv.name)
	}
	return l
}

// nextLine advances the pre-order counter and resolves one statement's
// pseudo-line: the explicit @N annotation when present, else the ordinal.
func (lo *lowerer) nextLine(src int, hasSrc bool) int {
	lo.ordinal++
	if hasSrc {
		return src
	}
	return lo.ordinal
}

func (lo *lowerer) stmts(in []stmtNode, defined map[string]bool) []ir.Stmt {
	var out []ir.Stmt
	for _, sn := range in {
		switch x := sn.(type) {
		case *assignStmt:
			if s := lo.assign(x, defined); s != nil {
				out = append(out, s)
			}
		case *ifStmt:
			line := lo.nextLine(x.src, x.hasSrc)
			cond, condOK := lo.expr(x.cond, defined)
			if condOK && cond.Kind() != ir.I64 {
				lo.errorf(x.cond.at(), "the if condition must be i64 (comparisons yield i64 0/1), got f64; compare explicitly, like x != 0.0")
				condOK = false
			}
			// Lower both branches even under a bad condition so their own
			// diagnostics still surface; the merge rule matches
			// ir.Validate: a def survives the if only if made in both arms.
			thenDef := copyDefs(defined)
			then := lo.stmts(x.then, thenDef)
			elseDef := copyDefs(defined)
			els := lo.stmts(x.els, elseDef)
			names := make([]string, 0, len(thenDef))
			for name := range thenDef {
				if thenDef[name] && elseDef[name] {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			for _, name := range names {
				defined[name] = true
			}
			if condOK {
				out = append(out, &ir.If{Src: line, Cond: cond, Then: then, Else: els})
			}
		}
	}
	return out
}

func (lo *lowerer) assign(x *assignStmt, defined map[string]bool) ir.Stmt {
	line := lo.nextLine(x.src, x.hasSrc)
	rhs, rhsOK := lo.expr(x.rhs, defined)

	if x.index != nil { // store: name[index] = rhs
		ak, declared := lo.arrays[x.name]
		if !declared {
			lo.errorf(x.npos, "store to undeclared array %q; declare it like: array f64 %s[] = {...};", x.name, x.name)
			return nil
		}
		idx, idxOK := lo.expr(x.index, defined)
		if idxOK && idx.Kind() != ir.I64 {
			lo.errorf(x.index.at(), "the store index must be i64, got f64; truncate explicitly with i64(...)")
			idxOK = false
		}
		if rhsOK && rhs.Kind() != ak {
			lo.errorf(x.rhs.at(), "array %q holds %s but the stored value is %s; convert with %s", x.name, ak, rhs.Kind(), convHint(ak))
			rhsOK = false
		}
		if !rhsOK || !idxOK {
			return nil
		}
		return &ir.Assign{Src: line, Dest: &ir.ElemDest{Array: x.name, K: ak, Index: idx}, X: rhs}
	}

	// Temp assignment: name = rhs.
	if x.name == lo.index {
		lo.errorf(x.npos, "unsupported: assigning the induction variable %q; the loop header owns it", x.name)
		return nil
	}
	prev, known := lo.kinds[x.name]
	if !known {
		if _, isArr := lo.arrays[x.name]; isArr {
			lo.errorf(x.npos, "%q is an array; store one element, like %s[%s] = ...", x.name, x.name, lo.index)
			return nil
		}
	}
	// Even when the value is broken, record the def so later uses of the
	// name don't cascade into bogus use-before-def diagnostics.
	defined[x.name] = true
	lo.ever[x.name] = true
	if !rhsOK {
		return nil
	}
	if known && prev != rhs.Kind() {
		lo.errorf(x.rhs.at(), "%q has kind %s but the expression is %s; temporaries keep one kind (convert with %s)", x.name, prev, rhs.Kind(), convHint(prev))
		return nil
	}
	lo.kinds[x.name] = rhs.Kind()
	return &ir.Assign{Src: line, Dest: ir.TempDest{Name: x.name, K: rhs.Kind()}, X: rhs}
}

func convHint(want ir.Kind) string {
	if want == ir.F64 {
		return "f64(...)"
	}
	return "i64(...)"
}

// expr type-checks and lowers one expression. ok is false when a
// diagnostic was recorded somewhere inside; the expression is then
// unusable but sibling subtrees have already reported their own errors.
func (lo *lowerer) expr(e exprNode, defined map[string]bool) (ir.Expr, bool) {
	switch x := e.(type) {
	case *numExpr:
		if x.lit.isFloat {
			return ir.ConstF{V: x.lit.f}, true
		}
		return ir.ConstI{V: x.lit.i}, true

	case *identExpr:
		k, known := lo.kinds[x.name]
		if !known {
			if _, isArr := lo.arrays[x.name]; isArr {
				lo.errorf(x.pos, "%q is an array; load one element, like %s[%s]", x.name, x.name, lo.index)
			} else {
				lo.errorf(x.pos, "%q is undefined; declare it with param, or assign it earlier in the loop", x.name)
			}
			return nil, false
		}
		if !defined[x.name] {
			lo.errorf(x.pos, "%q is not defined on every path to this use (assign it before the if, or in both branches)", x.name)
			return nil, false
		}
		return ir.Temp{Name: x.name, K: k}, true

	case *loadExpr:
		ak, declared := lo.arrays[x.name]
		if !declared {
			if _, isTemp := lo.kinds[x.name]; isTemp {
				lo.errorf(x.pos, "%q is a scalar, not an array; it cannot be indexed", x.name)
			} else {
				lo.errorf(x.pos, "load from undeclared array %q; declare it like: array f64 %s[] = {...};", x.name, x.name)
			}
			return nil, false
		}
		idx, ok := lo.expr(x.index, defined)
		if !ok {
			return nil, false
		}
		if idx.Kind() != ir.I64 {
			lo.errorf(x.index.at(), "the load index must be i64, got f64; truncate explicitly with i64(...)")
			return nil, false
		}
		return &ir.Load{Array: x.name, K: ak, Index: idx}, true

	case *callExpr:
		return lo.call(x, defined)

	case *unExpr:
		v, ok := lo.expr(x.x, defined)
		if !ok {
			return nil, false
		}
		if x.op == '!' {
			if v.Kind() != ir.I64 {
				lo.errorf(x.pos, "'!' requires an i64 operand (booleans are i64 0/1), got f64")
				return nil, false
			}
			return &ir.Un{Op: ir.Not, X: v}, true
		}
		return &ir.Un{Op: ir.Neg, X: v}, true

	case *binExpr:
		l, lok := lo.expr(x.l, defined)
		r, rok := lo.expr(x.r, defined)
		if !lok || !rok {
			return nil, false
		}
		op, known := binOps[x.op]
		if !known {
			lo.errorf(x.pos, "internal: unmapped binary operator %q", x.sym)
			return nil, false
		}
		if l.Kind() != r.Kind() {
			lo.errorf(x.pos, "operands of %q have different kinds (%s vs %s); convert one side with f64(...) or i64(...)", x.sym, l.Kind(), r.Kind())
			return nil, false
		}
		if op.IntOnly() && l.Kind() != ir.I64 {
			lo.errorf(x.pos, "operator %q is defined on i64 only, got f64 operands", x.sym)
			return nil, false
		}
		return &ir.Bin{Op: op, L: l, R: r}, true
	}
	return nil, false
}

var binOps = map[tokKind]ir.BinOp{
	tPlus: ir.Add, tMinus: ir.Sub, tStar: ir.Mul, tSlash: ir.Div, tPercent: ir.Rem,
	tAmp: ir.And, tPipe: ir.Or, tCaret: ir.Xor, tShl: ir.Shl, tShr: ir.Shr,
	tEq: ir.Eq, tNe: ir.Ne, tLt: ir.Lt, tLe: ir.Le, tGt: ir.Gt, tGe: ir.Ge,
}

// unCalls maps single-argument builtins to their UnOp plus the operand
// kind they require (nil = any kind).
var unCalls = map[string]struct {
	op   ir.UnOp
	want *ir.Kind
}{
	"sqrt":  {ir.Sqrt, kindPtr(ir.F64)},
	"exp":   {ir.Exp, kindPtr(ir.F64)},
	"log":   {ir.Log, kindPtr(ir.F64)},
	"floor": {ir.Floor, kindPtr(ir.F64)},
	"abs":   {ir.Abs, nil},
	"f64":   {ir.CvtIF, kindPtr(ir.I64)},
	"i64":   {ir.CvtFI, kindPtr(ir.F64)},
}

func kindPtr(k ir.Kind) *ir.Kind { return &k }

func (lo *lowerer) call(x *callExpr, defined map[string]bool) (ir.Expr, bool) {
	if x.fn == "min" || x.fn == "max" {
		if len(x.args) != 2 {
			lo.errorf(x.pos, "%s takes exactly 2 arguments, got %d", x.fn, len(x.args))
			return nil, false
		}
		l, lok := lo.expr(x.args[0], defined)
		r, rok := lo.expr(x.args[1], defined)
		if !lok || !rok {
			return nil, false
		}
		if l.Kind() != r.Kind() {
			lo.errorf(x.pos, "operands of %s have different kinds (%s vs %s); convert one side with f64(...) or i64(...)", x.fn, l.Kind(), r.Kind())
			return nil, false
		}
		op := ir.Min
		if x.fn == "max" {
			op = ir.Max
		}
		return &ir.Bin{Op: op, L: l, R: r}, true
	}
	uc, known := unCalls[x.fn]
	if !known {
		lo.errorf(x.pos, "unknown function %q; available: min, max, sqrt, exp, log, abs, floor, and the conversions f64(...), i64(...)", x.fn)
		return nil, false
	}
	if len(x.args) != 1 {
		lo.errorf(x.pos, "%s takes exactly 1 argument, got %d", x.fn, len(x.args))
		return nil, false
	}
	v, ok := lo.expr(x.args[0], defined)
	if !ok {
		return nil, false
	}
	if uc.want != nil && v.Kind() != *uc.want {
		switch x.fn {
		case "f64":
			lo.errorf(x.pos, "f64(...) converts i64 values; the argument is already f64")
		case "i64":
			lo.errorf(x.pos, "i64(...) truncates f64 values; the argument is already i64")
		default:
			lo.errorf(x.pos, "%s requires an %s argument, got %s; convert with %s", x.fn, *uc.want, v.Kind(), convHint(*uc.want))
		}
		return nil, false
	}
	return &ir.Un{Op: uc.op, X: v}, true
}

func copyDefs(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
