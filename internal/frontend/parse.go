// The recursive-descent parser: tokens to the AST in ast.go. Error
// handling is diagnostic-first: a syntax error records a positioned
// diagnostic and resynchronizes at the next statement or declaration
// boundary, so one parse reports every independent error it can see.
// Resource exhaustion (nesting depth, node budget, diagnostic cap) aborts
// the whole parse via a sentinel panic recovered in parseFile — malformed
// input can cost at most Limits, never a stack overflow or OOM.

package frontend

import (
	"errors"
	"math"
	"strconv"

	"fgp/internal/ir"
)

// bailout aborts the whole parse (budget exhausted).
type bailout struct{}

// syncErr unwinds to the nearest recovery point (statement or declaration
// loop), which skips to a ';' or '}' boundary and continues.
type syncErr struct{}

type parser struct {
	toks  []token // always ends with tEOF
	pos   int
	sc    *source
	lim   Limits
	diags []Diagnostic
	nodes int
	depth int
}

func parseFile(toks []token, sc *source, lim Limits) (f *file, diags []Diagnostic) {
	p := &parser{toks: toks, sc: sc, lim: lim}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			f = nil
		}
		diags = p.diags
	}()
	f = p.parseProgram()
	if len(p.diags) > 0 {
		f = nil
	}
	return f, p.diags
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

// errorf records a diagnostic; the parse continues (callers that cannot
// continue use failf).
func (p *parser) errorf(at pos, format string, args ...any) {
	if len(p.diags) >= p.lim.MaxDiags {
		p.diags = append(p.diags, p.sc.diag(at, "too many errors; giving up"))
		panic(bailout{})
	}
	p.diags = append(p.diags, p.sc.diag(at, format, args...))
}

// failf records a diagnostic and unwinds to the nearest recovery point.
func (p *parser) failf(at pos, format string, args ...any) {
	p.errorf(at, format, args...)
	panic(syncErr{})
}

// want consumes a token of the given kind or fails with "expected X, found
// Y". ctx finishes the sentence ("after the loop body", ...).
func (p *parser) want(k tokKind, ctx string) token {
	t := p.cur()
	if t.kind != k {
		p.failf(t.pos, "expected %s %s, found %s", k.desc(), ctx, t.describe())
	}
	return p.next()
}

func (p *parser) got(k tokKind) bool {
	if p.cur().kind == k {
		p.next()
		return true
	}
	return false
}

// node charges one unit against the node budget.
func (p *parser) node() {
	p.nodes++
	if p.nodes > p.lim.MaxNodes {
		p.errorf(p.cur().pos, "program exceeds the node budget (%d nodes); split the kernel or raise the limit", p.lim.MaxNodes)
		panic(bailout{})
	}
}

// charge charges n units at once (array splats).
func (p *parser) charge(at pos, n int) {
	if n > p.lim.MaxNodes-p.nodes {
		p.errorf(at, "program exceeds the node budget (%d nodes); split the kernel or raise the limit", p.lim.MaxNodes)
		panic(bailout{})
	}
	p.nodes += n
}

func (p *parser) enter(at pos) {
	p.depth++
	if p.depth > p.lim.MaxDepth {
		p.errorf(at, "nesting exceeds the depth limit (%d)", p.lim.MaxDepth)
		panic(bailout{})
	}
}

func (p *parser) leave() { p.depth-- }

// sync recovers from a syncErr panic by skipping to just past the next ';'
// (or stopping before '}'/EOF, which the statement loops handle).
func (p *parser) sync(r any) {
	if r == nil {
		return
	}
	if _, ok := r.(syncErr); !ok {
		panic(r)
	}
	for {
		switch p.cur().kind {
		case tEOF, tRBrace:
			return
		case tSemi:
			p.next()
			return
		case tLBrace:
			// Don't skip into a block: the statement loop will resume there.
			return
		}
		p.next()
	}
}

// program := [kernelDecl] {paramDecl | arrayDecl} forLoop [liveOutDecl] EOF
func (p *parser) parseProgram() *file {
	f := &file{}
decls:
	for {
		t := p.cur()
		switch t.kind {
		case tKernel:
			p.parseKernelDecl(f)
		case tParam:
			p.parseParamDecl(f)
		case tArray:
			p.parseArrayDecl(f)
		case tFor:
			break decls
		case tEOF:
			p.errorf(t.pos, "missing the for loop: a program is declarations, one counted 'for' loop, then live_out")
			return f
		default:
			p.reportStray(t, "at top level; expected kernel, param, array or for")
			p.next()
		}
	}
	func() {
		defer func() { p.sync(recover()) }()
		f.loop = p.parseFor()
	}()
	if p.cur().kind == tLiveOut {
		func() {
			defer func() { p.sync(recover()) }()
			p.parseLiveOut(f)
		}()
	}
	if t := p.cur(); t.kind != tEOF {
		switch t.kind {
		case tFor:
			p.errorf(t.pos, "unsupported: a second top-level loop; one kernel is exactly one counted loop")
		case tParam, tArray:
			p.errorf(t.pos, "declarations must come before the loop")
		default:
			p.errorf(t.pos, "unexpected %s after the loop", t.describe())
		}
	}
	return f
}

// reportStray explains common out-of-subset constructs by name.
func (p *parser) reportStray(t token, where string) {
	if t.kind == tIdent {
		switch t.text {
		case "while", "do":
			p.errorf(t.pos, "unsupported: '%s' loops are outside the fgp subset; only counted 'for' loops compile", t.text)
			return
		case "double", "float", "int", "long":
			p.errorf(t.pos, "unknown type %q; the fgp kinds are f64 and i64 (declare with 'param' or 'array')", t.text)
			return
		}
	}
	p.errorf(t.pos, "unexpected %s %s", t.describe(), where)
}

func (p *parser) parseKernelDecl(f *file) {
	defer func() { p.sync(recover()) }()
	kw := p.next()
	if f.hasName {
		p.errorf(kw.pos, "duplicate kernel declaration")
	}
	t := p.cur()
	switch t.kind {
	case tString, tIdent:
		p.next()
		f.hasName, f.name, f.namePos = true, t.text, t.pos
	default:
		p.failf(t.pos, "expected a kernel name (identifier or string) after 'kernel', found %s", t.describe())
	}
	p.want(tSemi, "after the kernel name")
}

func (p *parser) parseKind() (ir.Kind, pos) {
	t := p.cur()
	switch t.kind {
	case tF64:
		p.next()
		return ir.F64, t.pos
	case tI64:
		p.next()
		return ir.I64, t.pos
	}
	p.failf(t.pos, "expected a kind (f64 or i64), found %s", t.describe())
	return ir.F64, t.pos
}

func (p *parser) parseParamDecl(f *file) {
	defer func() { p.sync(recover()) }()
	kw := p.next()
	k, _ := p.parseKind()
	name := p.want(tIdent, "as the param name")
	p.want(tAssign, "after the param name (params carry their initial value)")
	val := p.parseNumLit()
	p.want(tSemi, "after the param value")
	p.node()
	f.params = append(f.params, &paramDecl{pos: kw.pos, kind: k, name: name.text, npos: name.pos, val: val})
}

// parseArrayDecl parses `array KIND name[] = { items };` where items is a
// comma list of signed literals or the splat form `{ value; count }`.
func (p *parser) parseArrayDecl(f *file) {
	defer func() { p.sync(recover()) }()
	kw := p.next()
	k, _ := p.parseKind()
	name := p.want(tIdent, "as the array name")
	p.want(tLBracket, "after the array name (lengths are implied: name[])")
	if t := p.cur(); t.kind == tInt {
		p.failf(t.pos, "array lengths are implied by the initializer; write %s[] = {...}", name.text)
	}
	p.want(tRBracket, "after '['")
	p.want(tAssign, "after the array declarator")
	p.want(tLBrace, "to open the array initializer")
	var items []numLit
	if p.cur().kind != tRBrace {
		for {
			lit := p.parseNumLit()
			p.node()
			items = append(items, lit)
			if p.got(tComma) {
				if p.cur().kind == tRBrace {
					break // trailing comma
				}
				continue
			}
			if p.cur().kind == tSemi && len(items) == 1 {
				// Splat: {value; count}.
				p.next()
				cnt := p.parseIntLit("as the splat count")
				if cnt < 1 {
					p.failf(kw.pos, "splat count must be at least 1, got %d", cnt)
				}
				if cnt > int64(p.lim.MaxNodes) {
					p.failf(kw.pos, "splat count %d exceeds the node budget (%d nodes)", cnt, p.lim.MaxNodes)
				}
				p.charge(kw.pos, int(cnt-1))
				for range cnt - 1 {
					items = append(items, lit)
				}
			}
			break
		}
	}
	p.want(tRBrace, "to close the array initializer")
	p.want(tSemi, "after the array declaration")
	f.arrays = append(f.arrays, &arrayDecl{pos: kw.pos, kind: k, name: name.text, npos: name.pos, items: items})
}

// parseNumLit parses a signed numeric literal: [-] (INT | FLOAT | nan | inf).
func (p *parser) parseNumLit() numLit {
	t := p.cur()
	neg := false
	if t.kind == tMinus {
		p.next()
		neg = true
	}
	return p.parseNumTail(t.pos, neg)
}

// parseNumTail converts the numeric token under the cursor, applying the
// sign context (so -9223372036854775808 is representable and -0.0 keeps
// its sign bit).
func (p *parser) parseNumTail(at pos, neg bool) numLit {
	t := p.cur()
	switch t.kind {
	case tInt:
		p.next()
		u, err := strconv.ParseUint(t.text, 10, 64)
		bound := uint64(math.MaxInt64)
		if neg {
			bound = uint64(math.MaxInt64) + 1
		}
		if err != nil || u > bound {
			p.failf(t.pos, "integer literal %s%s overflows i64", signStr(neg), t.text)
		}
		v := int64(u) // u == 1<<63 wraps to MinInt64, exactly the neg bound
		if neg && u <= uint64(math.MaxInt64) {
			v = -v
		}
		return numLit{pos: at, i: v}
	case tFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil { // overflow to ±Inf is fine; keep the parsed value
			var ne *strconv.NumError
			if !errors.As(err, &ne) || ne.Err != strconv.ErrRange {
				p.failf(t.pos, "invalid float literal %s", t.text)
			}
		}
		if neg {
			v = -v
		}
		return numLit{pos: at, isFloat: true, f: v}
	case tNan:
		p.next()
		return numLit{pos: at, isFloat: true, f: math.NaN()}
	case tInf:
		p.next()
		v := math.Inf(1)
		if neg {
			v = math.Inf(-1)
		}
		return numLit{pos: at, isFloat: true, f: v}
	}
	p.failf(t.pos, "expected a numeric literal, found %s", t.describe())
	return numLit{}
}

func signStr(neg bool) string {
	if neg {
		return "-"
	}
	return ""
}

// parseIntLit parses a signed integer literal (loop bounds, splat counts,
// '@' annotations).
func (p *parser) parseIntLit(ctx string) int64 {
	t := p.cur()
	lit := p.parseNumLit()
	if lit.isFloat {
		p.failf(t.pos, "expected an integer literal %s, found a float", ctx)
	}
	return lit.i
}

// forLoop := "for" IDENT "=" int ";" IDENT "<" int ";" IDENT "+=" int block
func (p *parser) parseFor() *loopDecl {
	kw := p.want(tFor, "to open the loop")
	ld := &loopDecl{pos: kw.pos}
	idx := p.want(tIdent, "as the induction variable")
	ld.index, ld.ipos = idx.text, idx.pos
	p.want(tAssign, "in the loop initializer")
	if t := p.cur(); t.kind == tIdent {
		p.failf(t.pos, "loop bounds must be integer literals in the fgp subset (fold %q into the source)", t.text)
	}
	ld.start = p.parseIntLit("as the loop start")
	p.want(tSemi, "after the loop initializer")
	c := p.want(tIdent, "in the loop condition")
	if c.text != ld.index {
		p.errorf(c.pos, "the loop condition tests %q, but the induction variable is %q", c.text, ld.index)
	}
	if t := p.cur(); t.kind == tLe {
		p.failf(t.pos, "unsupported: the loop condition must use '<' (ranges are half-open); rewrite '<= n' as '< n+1' with a literal bound")
	}
	p.want(tLt, "in the loop condition")
	if t := p.cur(); t.kind == tIdent {
		p.failf(t.pos, "loop bounds must be integer literals in the fgp subset (fold %q into the source)", t.text)
	}
	ld.end = p.parseIntLit("as the loop bound")
	p.want(tSemi, "after the loop condition")
	s := p.want(tIdent, "in the loop step")
	if s.text != ld.index {
		p.errorf(s.pos, "the loop step advances %q, but the induction variable is %q", s.text, ld.index)
	}
	if t := p.cur(); t.kind == tAssign {
		p.failf(t.pos, "write the loop step as '%s += n'", ld.index)
	}
	p.want(tPlusEq, "in the loop step")
	ld.step = p.parseIntLit("as the loop step")
	ld.body = p.parseBlock()
	return ld
}

func (p *parser) parseBlock() []stmtNode {
	lb := p.want(tLBrace, "to open the block")
	p.enter(lb.pos)
	defer p.leave()
	var out []stmtNode
	for p.cur().kind != tRBrace && p.cur().kind != tEOF {
		before := p.pos
		if s := p.parseStmtRecover(); s != nil {
			out = append(out, s)
		}
		if p.pos == before {
			// sync stopped on a token no statement starts with (e.g. a stray
			// '{'); consume it so recovery always makes progress.
			p.next()
		}
	}
	p.want(tRBrace, "to close the block")
	return out
}

func (p *parser) parseStmtRecover() (s stmtNode) {
	defer func() { p.sync(recover()) }()
	return p.parseStmt()
}

// stmt := ["@" int] (ifStmt | assign)
func (p *parser) parseStmt() stmtNode {
	t := p.cur()
	var src int
	hasSrc := false
	if t.kind == tAt {
		p.next()
		src64 := p.parseIntLit("after '@'")
		if src64 > math.MaxInt32 || src64 < math.MinInt32 {
			p.failf(t.pos, "'@' line annotation %d is out of range", src64)
		}
		src, hasSrc = int(src64), true
		t = p.cur()
	}
	switch t.kind {
	case tIf:
		return p.parseIf(src, hasSrc)
	case tIdent:
		if (t.text == "while" || t.text == "do") && p.toks[p.pos+1].kind != tAssign && p.toks[p.pos+1].kind != tLBracket {
			p.failf(t.pos, "unsupported: '%s' loops are outside the fgp subset; only counted 'for' loops compile", t.text)
		}
		return p.parseAssign(src, hasSrc)
	case tFor:
		p.failf(t.pos, "unsupported: nested loops are outside the fgp subset; a kernel is one counted loop (fuse or peel inner loops by hand)")
	case tSemi:
		p.errorf(t.pos, "empty statement")
		p.next()
		return nil
	case tElse:
		p.failf(t.pos, "'else' without a preceding if block")
	case tLiveOut:
		p.failf(t.pos, "live_out goes after the loop's closing '}'")
	}
	p.failf(t.pos, "expected a statement (assignment or if), found %s", t.describe())
	return nil
}

// assign := IDENT ["[" expr "]"] "=" expr ";"
func (p *parser) parseAssign(src int, hasSrc bool) stmtNode {
	name := p.next() // tIdent, checked by the caller
	s := &assignStmt{pos: name.pos, src: src, hasSrc: hasSrc, name: name.text, npos: name.pos}
	if p.cur().kind == tLBracket {
		lb := p.next()
		p.enter(lb.pos)
		s.index = p.parseExpr()
		p.leave()
		p.want(tRBracket, "after the store index")
	}
	switch t := p.cur(); t.kind {
	case tAssign:
		p.next()
	case tPlusEq:
		p.failf(t.pos, "unsupported: compound assignment; write %s = %s + ... instead", name.text, name.text)
	case tPlus, tMinus:
		if p.toks[p.pos+1].kind == t.kind { // ++ / --
			p.failf(t.pos, "unsupported: increment/decrement; write %s = %s + 1 instead", name.text, name.text)
		}
		p.failf(t.pos, "expected '=' after the assignment target, found %s", t.describe())
	case tLParen:
		p.failf(t.pos, "unsupported: calls as statements; every statement assigns a value")
	default:
		p.failf(t.pos, "expected '=' after the assignment target, found %s", t.describe())
	}
	s.rhs = p.parseExpr()
	p.want(tSemi, "after the assignment")
	p.node()
	return s
}

// ifStmt := "if" expr block ["else" (block | ifStmt)]
func (p *parser) parseIf(src int, hasSrc bool) stmtNode {
	kw := p.next() // tIf
	s := &ifStmt{pos: kw.pos, src: src, hasSrc: hasSrc}
	// A parenthesized condition (the C habit) needs no special case:
	// parens are ordinary expression grouping.
	s.cond = p.parseExpr()
	s.then = p.parseBlock()
	if p.got(tElse) {
		if p.cur().kind == tIf {
			s.els = []stmtNode{p.parseIf(0, false)}
		} else {
			s.els = p.parseBlock()
		}
	}
	p.node()
	return s
}

func (p *parser) parseLiveOut(f *file) {
	p.next() // tLiveOut
	for {
		n := p.want(tIdent, "in the live_out list")
		f.liveOut = append(f.liveOut, liveName{name: n.text, pos: n.pos})
		if !p.got(tComma) {
			break
		}
	}
	p.want(tSemi, "after the live_out list")
}

// Expression precedence, lowest first. All binary operators associate left.
//
//	1: |    2: ^    3: &    4: == !=    5: < <= > >=    6: << >>
//	7: + -    8: * / %    9: unary - !    10: primary
func binLevel(k tokKind) int {
	switch k {
	case tPipe:
		return 1
	case tCaret:
		return 2
	case tAmp:
		return 3
	case tEq, tNe:
		return 4
	case tLt, tLe, tGt, tGe:
		return 5
	case tShl, tShr:
		return 6
	case tPlus, tMinus:
		return 7
	case tStar, tSlash, tPercent:
		return 8
	}
	return 0
}

func (p *parser) parseExpr() exprNode { return p.parseBin(1) }

func (p *parser) parseBin(min int) exprNode {
	x := p.parseUnary()
	for {
		t := p.cur()
		lv := binLevel(t.kind)
		if lv == 0 || lv < min {
			return x
		}
		p.next()
		y := p.parseBin(lv + 1)
		p.node()
		x = &binExpr{pos: t.pos, op: t.kind, sym: t.text, l: x, r: y}
	}
}

func (p *parser) parseUnary() exprNode {
	t := p.cur()
	switch t.kind {
	case tMinus:
		p.next()
		// A '-' directly before a literal folds into a negative constant,
		// so formatted negative constants round-trip as the same IR node.
		switch p.cur().kind {
		case tInt, tFloat, tNan, tInf:
			p.node()
			return &numExpr{pos: t.pos, lit: p.parseNumTail(t.pos, true)}
		}
		x := p.parseUnary()
		p.node()
		return &unExpr{pos: t.pos, op: '-', x: x}
	case tBang:
		p.next()
		x := p.parseUnary()
		p.node()
		return &unExpr{pos: t.pos, op: '!', x: x}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() exprNode {
	t := p.cur()
	switch t.kind {
	case tInt, tFloat, tNan, tInf:
		p.node()
		return &numExpr{pos: t.pos, lit: p.parseNumTail(t.pos, false)}
	case tIdent:
		p.next()
		switch p.cur().kind {
		case tLParen:
			return p.parseCall(t)
		case tLBracket:
			lb := p.next()
			p.enter(lb.pos)
			idx := p.parseExpr()
			p.leave()
			p.want(tRBracket, "after the load index")
			p.node()
			return &loadExpr{pos: t.pos, name: t.text, index: idx}
		}
		p.node()
		return &identExpr{pos: t.pos, name: t.text}
	case tF64, tI64:
		// Kind keywords in expression position are conversion calls.
		p.next()
		if p.cur().kind != tLParen {
			p.failf(t.pos, "expected '(' after %s: kind names convert, like %s(x)", t.text, t.text)
		}
		return p.parseCall(t)
	case tLParen:
		p.next()
		p.enter(t.pos)
		x := p.parseExpr()
		p.leave()
		p.want(tRParen, "to close the parenthesized expression")
		return x
	case tString:
		p.failf(t.pos, "strings only name kernels; expressions are numeric")
	}
	p.failf(t.pos, "expected an expression, found %s", t.describe())
	return nil
}

func (p *parser) parseCall(fn token) exprNode {
	lp := p.next() // tLParen
	p.enter(lp.pos)
	defer p.leave()
	c := &callExpr{pos: fn.pos, fn: fn.text}
	if p.cur().kind != tRParen {
		for {
			c.args = append(c.args, p.parseExpr())
			if !p.got(tComma) {
				break
			}
		}
	}
	p.want(tRParen, "to close the call")
	p.node()
	return c
}
