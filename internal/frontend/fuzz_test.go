package frontend

import (
	"testing"

	"fgp/internal/ir"
	"fgp/internal/kernels"
)

// FuzzParse is the parser robustness target: arbitrary bytes must produce
// either a validated loop or a positioned diagnostic — never a panic, and
// never unbounded resource use (the harness itself enforces the memory
// side via -fuzz). Accepted inputs additionally round-trip: the formatted
// normal form reparses to an identical loop, so coverage-guided input
// discovery keeps probing the Format/Parse inverse pair too.
func FuzzParse(f *testing.F) {
	f.Add([]byte(dotSrc))
	f.Add([]byte("kernel \"x\";\nparam i64 n = -3;\narray i64 g[] = {1; 9};\n" +
		"for i = 0; i < 9; i += 2 {\n @5 if g[i] % 2 == 1 {\n  n = n + g[i];\n } else if i == 0 {\n  n = n - 1;\n }\n g[i] = min(n, 7) << 1;\n}\nlive_out n;\n"))
	f.Add([]byte("array f64 a[] = {nan, inf, -inf, -0.0, 5e-324};\nfor i = 0; i < 5; i += 1 {\n a[i] = sqrt(abs(a[i])) / (a[i] - -1.5);\n}"))
	f.Add([]byte("for i = 0; i <= 3; i += 1 { while (1) { x += 2 } }"))
	f.Add([]byte("((((((((((((("))
	f.Add([]byte("kernel \"\\x\";@@@\x00\xff"))
	for _, k := range kernels.All() {
		f.Add([]byte(Format(k.Build())))
	}

	// Tight limits keep each execution cheap so the smoke window explores
	// many inputs; the limits themselves are part of the attack surface.
	lim := Limits{MaxDepth: 48, MaxNodes: 1 << 14, MaxDiags: 12}
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ParseWithLimits(data, lim)
		if err != nil {
			fe, ok := err.(*Error)
			if !ok {
				t.Fatalf("error is %T, want *frontend.Error: %v", err, err)
			}
			if len(fe.Diags) == 0 {
				t.Fatal("rejection without diagnostics")
			}
			for _, d := range fe.Diags {
				if d.Line < 1 || d.Col < 1 {
					t.Fatalf("diagnostic without position: %+v", d)
				}
			}
			return
		}
		if verr := ir.Validate(l); verr != nil {
			t.Fatalf("accepted loop fails ir.Validate: %v", verr)
		}
		src := Format(l)
		l2, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("normal form failed to reparse: %v\n%s", err, src)
		}
		b1, err := ir.MarshalLoop(l)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := ir.MarshalLoop(l2)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("round trip changed the loop\nsource:\n%s\nwant %s\ngot  %s", src, b1, b2)
		}
	})
}
