package frontend

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"fgp/internal/ir"
)

// mustParse fails the test with the full diagnostic list on error.
func mustParse(t *testing.T, src string) *ir.Loop {
	t.Helper()
	l, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return l
}

const dotSrc = `
kernel "dot";

param f64 acc = 0.0;
array f64 a[] = {0.5, 1.5, 2.5};
array f64 b[] = {1.0, 2.0, 3.0};

for i = 0; i < 3; i += 1 {
  acc = acc + a[i] * b[i];
}

live_out acc;
`

func TestParseDot(t *testing.T) {
	l := mustParse(t, dotSrc)
	if l.Name != "dot" {
		t.Errorf("name = %q, want dot", l.Name)
	}
	if l.Index != "i" || l.Start != 0 || l.End != 3 || l.Step != 1 {
		t.Errorf("header = %s %d..%d step %d", l.Index, l.Start, l.End, l.Step)
	}
	if len(l.Body) != 1 || len(l.Arrays) != 2 || len(l.Scalars) != 1 || len(l.LiveOut) != 1 {
		t.Errorf("shape: %d stmts %d arrays %d scalars %d liveouts",
			len(l.Body), len(l.Arrays), len(l.Scalars), len(l.LiveOut))
	}
	a := l.Body[0].(*ir.Assign)
	if a.Src != 1 {
		t.Errorf("stmt line = %d, want pre-order ordinal 1", a.Src)
	}
	// acc + a[i]*b[i] must honor precedence: Add(acc, Mul(load, load)).
	add := a.X.(*ir.Bin)
	if add.Op != ir.Add {
		t.Fatalf("root op = %v, want add", add.Op)
	}
	if mul, ok := add.R.(*ir.Bin); !ok || mul.Op != ir.Mul {
		t.Errorf("right child = %v, want mul", add.R)
	}
}

func TestParseControlFlowAndOrdinals(t *testing.T) {
	l := mustParse(t, `
kernel branchy;
param i64 acc = 0;
array i64 g[] = {3, 1, 4, 1, 5};
for i = 0; i < 5; i += 1 {
  v = g[i];
  if v % 2 == 1 {
    acc = acc + v;
  } else {
    acc = acc - v;
  }
}
live_out acc;
`)
	if l.Name != "branchy" {
		t.Errorf("identifier kernel name: got %q", l.Name)
	}
	ifs := l.Body[1].(*ir.If)
	// Pre-order: v=... is 1, if is 2, then-assign 3, else-assign 4.
	if ifs.Src != 2 || ifs.Then[0].Line() != 3 || ifs.Else[0].Line() != 4 {
		t.Errorf("ordinals: if=%d then=%d else=%d, want 2,3,4",
			ifs.Src, ifs.Then[0].Line(), ifs.Else[0].Line())
	}
}

func TestParseAtAnnotations(t *testing.T) {
	l := mustParse(t, `
array f64 a[] = {1.0};
for i = 0; i < 1; i += 1 {
  @7 x = a[i];
  a[i] = x;
}
`)
	if got := l.Body[0].Line(); got != 7 {
		t.Errorf("annotated line = %d, want 7", got)
	}
	// The ordinal counter still advances under an annotation, so the next
	// statement numbers as if the annotation were absent.
	if got := l.Body[1].Line(); got != 2 {
		t.Errorf("following line = %d, want 2", got)
	}
}

func TestParseSplatAndElseIf(t *testing.T) {
	l := mustParse(t, `
array f64 a[] = {0.5; 100};
param i64 n = 0;
for i = 0; i < 100; i += 1 {
  k = n;
  if i == 0 {
    k = k + 1;
  } else if i == 1 {
    k = k + 2;
  } else {
    k = k + 3;
  }
  a[i] = f64(k);
}
`)
	if l.Arrays[0].Len() != 100 || l.Arrays[0].InitF[99] != 0.5 {
		t.Errorf("splat: len=%d last=%v", l.Arrays[0].Len(), l.Arrays[0].InitF[99])
	}
	outer := l.Body[1].(*ir.If)
	inner, ok := outer.Else[0].(*ir.If)
	if !ok || len(inner.Else) != 1 {
		t.Fatalf("else-if did not nest: %+v", outer.Else)
	}
}

func TestParseNumericEdges(t *testing.T) {
	l := mustParse(t, fmt.Sprintf(`
param i64 lo = -9223372036854775808;
param i64 hi = 9223372036854775807;
param f64 tiny = 5e-324;
param f64 big = 1e300;
param f64 negzero = -0.0;
param f64 notnum = nan;
param f64 top = inf;
param f64 bot = -inf;
array i64 g[] = {1};
for i = 0; i < 1; i += 1 {
  g[i] = lo %s hi;
}
`, "&"))
	get := func(name string) ir.ScalarDecl {
		s, ok := l.Scalar(name)
		if !ok {
			t.Fatalf("missing scalar %q", name)
		}
		return s
	}
	if get("lo").I != math.MinInt64 || get("hi").I != math.MaxInt64 {
		t.Errorf("int extremes: lo=%d hi=%d", get("lo").I, get("hi").I)
	}
	if v := get("negzero").F; math.Float64bits(v) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("-0.0 lost its sign: %v", v)
	}
	if !math.IsNaN(get("notnum").F) || !math.IsInf(get("top").F, 1) || !math.IsInf(get("bot").F, -1) {
		t.Errorf("specials: nan=%v inf=%v -inf=%v", get("notnum").F, get("top").F, get("bot").F)
	}
	if get("tiny").F != 5e-324 || get("big").F != 1e300 {
		t.Errorf("extremes: tiny=%v big=%v", get("tiny").F, get("big").F)
	}
}

// diagnosticCases map source fragments outside the subset to a substring
// their first diagnostic must carry. Every rejection must be positioned.
var diagnosticCases = []struct {
	name, src, want string
}{
	{"while", "for i = 0; i < 1; i += 1 {\n while j < 3 { }\n}", "'while' loops are outside"},
	{"nested for", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n for j = 0; j < 2; j += 1 { }\n}", "nested loops"},
	{"compound assign", "param f64 x = 0.0;\nfor i = 0; i < 1; i += 1 {\n x += 1.0;\n}", "compound assignment"},
	{"increment", "param i64 x = 0;\nfor i = 0; i < 1; i += 1 {\n x++;\n}", "increment/decrement"},
	{"le condition", "for i = 0; i <= 3; i += 1 {\n}", "must use '<'"},
	{"symbolic bound", "param i64 n = 3;\nfor i = 0; i < n; i += 1 {\n}", "integer literals"},
	{"assign index", "array i64 g[] = {1};\nfor i = 0; i < 1; i += 1 {\n i = g[i];\n}", "induction variable"},
	{"undefined temp", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = y;\n}", "\"y\" is undefined"},
	{"use before def branch", "param i64 c = 1;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n if c {\n  t = 1.0;\n }\n a[i] = t;\n}", "every path"},
	{"kind mismatch bin", "param f64 x = 1.0;\nparam i64 n = 2;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = x + n;\n}", "different kinds"},
	{"rem on floats", "param f64 x = 1.0;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = x % x;\n}", "i64 only"},
	{"float condition", "param f64 x = 1.0;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n if x {\n  a[i] = x;\n }\n}", "condition must be i64"},
	{"temp kind flip", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n t = 1.0;\n t = 1;\n a[i] = t;\n}", "temporaries keep one kind"},
	{"undeclared array", "for i = 0; i < 1; i += 1 {\n q[i] = 1.0;\n}", "undeclared array"},
	{"scalar indexed", "param f64 x = 0.0;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = x[i];\n}", "cannot be indexed"},
	{"array as scalar", "array f64 a[] = {1.0};\narray f64 b[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n b[i] = a;\n}", "is an array"},
	{"sqrt of int", "param i64 n = 2;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = sqrt(n);\n}", "requires an f64 argument"},
	{"unknown function", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = cos(1.0);\n}", "unknown function"},
	{"min arity", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = min(1.0);\n}", "exactly 2 arguments"},
	{"float index", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = a[1.5];\n}", "index must be i64"},
	{"live out undefined", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0;\n}\nlive_out t;", "never assigned"},
	{"empty array", "array f64 a[] = {};\nfor i = 0; i < 1; i += 1 {\n t = a[i];\n}", "no elements"},
	{"dup array", "array f64 a[] = {1.0};\narray f64 a[] = {2.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0;\n}", "declared twice"},
	{"dup param", "param f64 x = 1.0;\nparam f64 x = 2.0;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = x;\n}", "declared twice"},
	{"index collides", "param i64 i = 0;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0;\n}", "collides with a param"},
	{"zero step", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 0 {\n a[i] = 1.0;\n}", "step must be positive"},
	{"i64 param float value", "param i64 n = 1.5;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0;\n}", "float literal"},
	{"logical and", "param i64 a = 1;\narray i64 g[] = {1};\nfor i = 0; i < 1; i += 1 {\n g[i] = a && a;\n}", "'&&'"},
	{"block comment", "/* hi */\nfor i = 0; i < 1; i += 1 {\n}", "block comments"},
	{"bad char", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0 ~ 2.0;\n}", "unexpected character"},
	{"leading dot float", "param f64 x = .5;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = x;\n}", "leading digit"},
	{"unterminated string", "kernel \"oops;\nfor i = 0; i < 1; i += 1 {\n}", "unterminated string"},
	{"int overflow", "param i64 n = 99999999999999999999;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0;\n}", "overflows i64"},
	{"missing loop", "param f64 x = 1.0;\n", "missing the for loop"},
	{"second loop", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0;\n}\nfor j = 0; j < 1; j += 1 {\n}", "second top-level loop"},
	{"trailing garbage", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0;\n}\n)", "after the loop"},
	{"empty source", "", "missing the for loop"},
	{"splat zero", "array f64 a[] = {1.0; 0};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0;\n}", "splat count"},
	{"call statement", "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n foo(1.0);\n}", "calls as statements"},
	{"condition wrong var", "array f64 a[] = {1.0};\nfor i = 0; j < 1; i += 1 {\n a[i] = 1.0;\n}", "induction variable is"},
	{"double conversion", "param f64 x = 1.0;\narray f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = f64(x);\n}", "already f64"},
}

func TestDiagnostics(t *testing.T) {
	for _, tc := range diagnosticCases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse accepted out-of-subset source:\n%s", tc.src)
			}
			fe, ok := err.(*Error)
			if !ok {
				t.Fatalf("error is %T, want *frontend.Error", err)
			}
			if len(fe.Diags) == 0 {
				t.Fatal("error carries no diagnostics")
			}
			found := false
			for _, d := range fe.Diags {
				if d.Line < 1 || d.Col < 1 {
					t.Errorf("diagnostic %q lacks a position (line %d col %d)", d.Msg, d.Line, d.Col)
				}
				if strings.Contains(d.Msg, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no diagnostic mentions %q; got:\n%v", tc.want, fe.Diags)
			}
		})
	}
}

func TestMultipleDiagnosticsInOnePass(t *testing.T) {
	// Two independent errors on different lines must both be reported.
	src := `
array f64 a[] = {1.0};
for i = 0; i < 1; i += 1 {
  a[i] = nosuch;
  a[i] = alsonosuch;
}
`
	_, err := Parse([]byte(src))
	fe, ok := err.(*Error)
	if !ok || len(fe.Diags) < 2 {
		t.Fatalf("want >= 2 diagnostics, got %v", err)
	}
	if fe.Diags[0].Line >= fe.Diags[1].Line {
		t.Errorf("diagnostics out of source order: %v", fe.Diags)
	}
	if fe.Diags[0].Snippet == "" {
		t.Errorf("diagnostic lacks a snippet: %+v", fe.Diags[0])
	}
}

func TestLimitDepth(t *testing.T) {
	deep := "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = " +
		strings.Repeat("(", 500) + "1.0" + strings.Repeat(")", 500) + ";\n}"
	_, err := ParseWithLimits([]byte(deep), Limits{MaxDepth: 64})
	if err == nil || !strings.Contains(err.Error(), "depth limit") {
		t.Fatalf("deep nesting not rejected: %v", err)
	}
	// The same source parses under a bigger budget (the limit is the only
	// thing rejecting it).
	if _, err := ParseWithLimits([]byte(deep), Limits{MaxDepth: 1000}); err != nil {
		t.Fatalf("depth 1000 should accept 500 parens: %v", err)
	}
}

func TestLimitNodes(t *testing.T) {
	var b strings.Builder
	b.WriteString("array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[0] = 0.0")
	for range 3000 {
		b.WriteString(" + 1.0")
	}
	b.WriteString(";\n}")
	_, err := ParseWithLimits([]byte(b.String()), Limits{MaxNodes: 1000})
	if err == nil || (!strings.Contains(err.Error(), "node budget") && !strings.Contains(err.Error(), "token budget")) {
		t.Fatalf("node flood not rejected: %v", err)
	}
}

func TestLimitSplatBudget(t *testing.T) {
	src := "array f64 a[] = {1.0; 100000};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0;\n}"
	_, err := ParseWithLimits([]byte(src), Limits{MaxNodes: 1000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("splat blowup not rejected: %v", err)
	}
}

func TestLimitMaxDiags(t *testing.T) {
	var b strings.Builder
	b.WriteString("array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n")
	for i := range 50 {
		fmt.Fprintf(&b, " a[i] = missing%d;\n", i)
	}
	b.WriteString("}\n")
	_, err := Parse([]byte(b.String()))
	fe, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %v", err)
	}
	if len(fe.Diags) > DefaultLimits().MaxDiags+1 {
		t.Errorf("diagnostics not capped: %d", len(fe.Diags))
	}
	last := fe.Diags[len(fe.Diags)-1]
	if !strings.Contains(last.Msg, "giving up") {
		t.Errorf("cap not announced: %+v", last)
	}
}

func TestErrorStringMentionsPosition(t *testing.T) {
	_, err := Parse([]byte("for i = 0; i <= 3; i += 1 {\n}"))
	if err == nil || !strings.Contains(err.Error(), "1:14") {
		t.Fatalf("error string lacks line:col: %v", err)
	}
}

func TestTempNamedLikeBuiltin(t *testing.T) {
	// Builtin names are contextual (call syntax only), so a temp or array
	// may legally be named sqrt/min/abs — the fuzz generator could emit
	// such names and Format must stay parseable.
	l := mustParse(t, `
array f64 abs[] = {4.0};
for i = 0; i < 1; i += 1 {
  sqrt = abs[i];
  abs[i] = sqrt + abs[i];
}
`)
	if l.Body[0].(*ir.Assign).Dest.(ir.TempDest).Name != "sqrt" {
		t.Error("temp named sqrt mishandled")
	}
	// And it round-trips.
	src := Format(l)
	l2, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, src)
	}
	mustEqualLoops(t, l, l2, src)
}

func mustEqualLoops(t *testing.T, a, b *ir.Loop, src string) {
	t.Helper()
	ab, err := ir.MarshalLoop(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := ir.MarshalLoop(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Errorf("loops differ after round trip\nsource:\n%s\nwant: %s\ngot:  %s", src, ab, bb)
	}
}
