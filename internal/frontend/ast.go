// The syntax tree the parser builds and the lowering pass consumes. Every
// node carries the position of its first token so the type checker can
// report semantic errors (kind mismatches, use-before-def) with the same
// line/col precision as syntax errors.

package frontend

import "fgp/internal/ir"

type file struct {
	hasName bool
	name    string
	namePos pos
	params  []*paramDecl
	arrays  []*arrayDecl
	loop    *loopDecl
	liveOut []liveName
}

type liveName struct {
	name string
	pos  pos
}

// numLit is a signed numeric literal, already converted: exactly one of
// f/i is meaningful, selected by isFloat.
type numLit struct {
	pos     pos
	isFloat bool
	f       float64
	i       int64
}

type paramDecl struct {
	pos  pos
	kind ir.Kind
	name string
	npos pos
	val  numLit
}

type arrayDecl struct {
	pos   pos
	kind  ir.Kind
	name  string
	npos  pos
	items []numLit
}

type loopDecl struct {
	pos              pos
	index            string
	ipos             pos
	start, end, step int64
	body             []stmtNode
}

type stmtNode interface{ at() pos }

// assignStmt is `name = expr;` (index == nil) or `name[index] = expr;`.
// src/hasSrc carry an explicit `@N` pseudo-line annotation; without one the
// lowering pass assigns the statement's pre-order ordinal, matching the
// numbering ir.Builder produces.
type assignStmt struct {
	pos    pos
	src    int
	hasSrc bool
	name   string
	npos   pos
	index  exprNode
	rhs    exprNode
}

type ifStmt struct {
	pos    pos
	src    int
	hasSrc bool
	cond   exprNode
	then   []stmtNode
	els    []stmtNode
}

func (s *assignStmt) at() pos { return s.pos }
func (s *ifStmt) at() pos     { return s.pos }

type exprNode interface{ at() pos }

type numExpr struct {
	pos pos
	lit numLit
}

type identExpr struct {
	pos  pos
	name string
}

type loadExpr struct {
	pos   pos
	name  string
	index exprNode
}

// callExpr covers the builtin functions (min, max, sqrt, exp, log, abs,
// floor) and the conversions f64(...) and i64(...).
type callExpr struct {
	pos  pos
	fn   string
	args []exprNode
}

// unExpr is prefix '-' or '!'. A '-' directly before a numeric literal is
// folded into a negative numExpr by the parser instead.
type unExpr struct {
	pos pos
	op  byte
	x   exprNode
}

type binExpr struct {
	pos  pos
	op   tokKind
	sym  string // operator spelling, for diagnostics
	l, r exprNode
}

func (e *numExpr) at() pos   { return e.pos }
func (e *identExpr) at() pos { return e.pos }
func (e *loadExpr) at() pos  { return e.pos }
func (e *callExpr) at() pos  { return e.pos }
func (e *unExpr) at() pos    { return e.pos }
func (e *binExpr) at() pos   { return e.pos }
