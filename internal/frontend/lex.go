// The lexer: bytes to positioned tokens. It never fails hard — bad input
// produces diagnostics and the scan continues, so one typo reports every
// error it can see, bounded by Limits.MaxDiags. Token count is bounded by
// Limits.MaxNodes: a token is the cheapest unit of work the parser can be
// made to do, so the budget is enforced here, before anything allocates
// per-token state downstream.

package frontend

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tString

	tKernel
	tParam
	tArray
	tFor
	tIf
	tElse
	tLiveOut
	tF64
	tI64
	tNan
	tInf

	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tLParen
	tRParen
	tSemi
	tComma
	tAt

	tAssign // =
	tPlusEq // +=

	tPlus
	tMinus
	tStar
	tSlash
	tPercent
	tAmp
	tPipe
	tCaret
	tShl
	tShr
	tEq
	tNe
	tLt
	tLe
	tGt
	tGe
	tBang
)

var tokDescs = map[tokKind]string{
	tEOF: "end of file", tIdent: "identifier", tInt: "integer literal",
	tFloat: "float literal", tString: "string literal",
	tKernel: "'kernel'", tParam: "'param'", tArray: "'array'", tFor: "'for'",
	tIf: "'if'", tElse: "'else'", tLiveOut: "'live_out'",
	tF64: "'f64'", tI64: "'i64'", tNan: "'nan'", tInf: "'inf'",
	tLBrace: "'{'", tRBrace: "'}'", tLBracket: "'['", tRBracket: "']'",
	tLParen: "'('", tRParen: "')'", tSemi: "';'", tComma: "','", tAt: "'@'",
	tAssign: "'='", tPlusEq: "'+='",
	tPlus: "'+'", tMinus: "'-'", tStar: "'*'", tSlash: "'/'", tPercent: "'%'",
	tAmp: "'&'", tPipe: "'|'", tCaret: "'^'", tShl: "'<<'", tShr: "'>>'",
	tEq: "'=='", tNe: "'!='", tLt: "'<'", tLe: "'<='", tGt: "'>'", tGe: "'>='",
	tBang: "'!'",
}

func (k tokKind) desc() string {
	if d, ok := tokDescs[k]; ok {
		return d
	}
	return fmt.Sprintf("token(%d)", k)
}

var keywords = map[string]tokKind{
	"kernel": tKernel, "param": tParam, "array": tArray, "for": tFor,
	"if": tIf, "else": tElse, "live_out": tLiveOut,
	"f64": tF64, "i64": tI64, "nan": tNan, "inf": tInf,
}

type pos struct {
	line, col int // 1-based
}

type token struct {
	kind tokKind
	text string // identifier name, number raw text, decoded string value
	pos  pos
}

// describe renders the token for "found ..." halves of diagnostics.
func (t token) describe() string {
	switch t.kind {
	case tIdent:
		return fmt.Sprintf("identifier %q", t.text)
	case tInt, tFloat:
		return fmt.Sprintf("number %s", t.text)
	case tString:
		return fmt.Sprintf("string %q", t.text)
	}
	return t.kind.desc()
}

// source holds the raw bytes plus line-start offsets for snippet rendering.
type source struct {
	data       []byte
	lineStarts []int
}

func newSource(data []byte) *source {
	s := &source{data: data, lineStarts: []int{0}}
	for i, b := range data {
		if b == '\n' {
			s.lineStarts = append(s.lineStarts, i+1)
		}
	}
	return s
}

const maxSnippetBytes = 120

// snippet returns the given 1-based source line, trimmed and bounded.
func (s *source) snippet(line int) string {
	if line < 1 || line > len(s.lineStarts) {
		return ""
	}
	start := s.lineStarts[line-1]
	end := len(s.data)
	if line < len(s.lineStarts) {
		end = s.lineStarts[line] - 1 // drop the newline
	}
	text := strings.TrimRight(string(s.data[start:end]), " \t\r")
	if len(text) > maxSnippetBytes {
		text = text[:maxSnippetBytes] + "..."
	}
	return text
}

func (s *source) diag(p pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Line:    p.line,
		Col:     p.col,
		Msg:     fmt.Sprintf(format, args...),
		Snippet: s.snippet(p.line),
	}
}

type lexer struct {
	sc    *source
	off   int
	line  int
	lstrt int // offset of the current line's start
	lim   Limits
	diags []Diagnostic
	full  bool // MaxDiags reached
}

// lexAll tokenizes the whole input. The returned slice always ends with a
// tEOF token; any diagnostics mean the input is rejected before parsing.
func lexAll(sc *source, lim Limits) ([]token, []Diagnostic) {
	lx := &lexer{sc: sc, line: 1, lim: lim}
	var toks []token
	for {
		t, ok := lx.next()
		if !ok { // token budget blown; stop scanning
			break
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			break
		}
		if len(toks) > lim.MaxNodes {
			lx.errorf(t.pos, "source exceeds the token budget (%d tokens); split the kernel or raise the limit", lim.MaxNodes)
			break
		}
	}
	toks = append(toks, token{kind: tEOF, pos: lx.pos()})
	return toks, lx.diags
}

func (lx *lexer) pos() pos {
	return pos{line: lx.line, col: lx.off - lx.lstrt + 1}
}

func (lx *lexer) errorf(p pos, format string, args ...any) {
	if lx.full {
		return
	}
	if len(lx.diags) >= lx.lim.MaxDiags {
		lx.diags = append(lx.diags, lx.sc.diag(p, "too many errors; giving up"))
		lx.full = true
		return
	}
	lx.diags = append(lx.diags, lx.sc.diag(p, format, args...))
}

func (lx *lexer) peek() byte {
	if lx.off < len(lx.sc.data) {
		return lx.sc.data[lx.off]
	}
	return 0
}

func (lx *lexer) peekAt(n int) byte {
	if lx.off+n < len(lx.sc.data) {
		return lx.sc.data[lx.off+n]
	}
	return 0
}

// advance moves past one byte, tracking line starts.
func (lx *lexer) advance() {
	if lx.sc.data[lx.off] == '\n' {
		lx.line++
		lx.lstrt = lx.off + 1
	}
	lx.off++
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}
func isIdentByte(b byte) bool { return isIdentStart(b) || isDigit(b) }

// next scans one token. ok is false only when the diagnostic budget is
// exhausted and scanning should stop outright.
func (lx *lexer) next() (token, bool) {
	for lx.off < len(lx.sc.data) {
		b := lx.peek()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.sc.data) && lx.peek() != '\n' {
				lx.advance()
			}
		case b == '/' && lx.peekAt(1) == '*':
			p := lx.pos()
			lx.errorf(p, "block comments are not supported; use // line comments")
			if lx.full {
				return token{}, false
			}
			lx.advance()
			lx.advance()
			for lx.off < len(lx.sc.data) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return lx.scanToken()
		}
	}
	return token{kind: tEOF, pos: lx.pos()}, true
}

func (lx *lexer) scanToken() (token, bool) {
	p := lx.pos()
	b := lx.peek()
	switch {
	case isIdentStart(b):
		start := lx.off
		for lx.off < len(lx.sc.data) && isIdentByte(lx.peek()) {
			lx.advance()
		}
		text := string(lx.sc.data[start:lx.off])
		if k, ok := keywords[text]; ok {
			return token{kind: k, text: text, pos: p}, true
		}
		return token{kind: tIdent, text: text, pos: p}, true
	case isDigit(b):
		return lx.scanNumber(p)
	case b == '"':
		return lx.scanString(p)
	}

	two := func(k tokKind) (token, bool) {
		lx.advance()
		lx.advance()
		return token{kind: k, text: string(lx.sc.data[lx.off-2 : lx.off]), pos: p}, true
	}
	one := func(k tokKind) (token, bool) {
		lx.advance()
		return token{kind: k, text: string(b), pos: p}, true
	}
	switch b {
	case '{':
		return one(tLBrace)
	case '}':
		return one(tRBrace)
	case '[':
		return one(tLBracket)
	case ']':
		return one(tRBracket)
	case '(':
		return one(tLParen)
	case ')':
		return one(tRParen)
	case ';':
		return one(tSemi)
	case ',':
		return one(tComma)
	case '@':
		return one(tAt)
	case '+':
		if lx.peekAt(1) == '=' {
			return two(tPlusEq)
		}
		return one(tPlus)
	case '-':
		return one(tMinus)
	case '*':
		return one(tStar)
	case '/':
		return one(tSlash)
	case '%':
		return one(tPercent)
	case '&':
		if lx.peekAt(1) == '&' {
			lx.errorf(p, "unsupported: '&&'; booleans are i64 0/1, use '&' for logical and")
		} else {
			return one(tAmp)
		}
	case '|':
		if lx.peekAt(1) == '|' {
			lx.errorf(p, "unsupported: '||'; booleans are i64 0/1, use '|' for logical or")
		} else {
			return one(tPipe)
		}
	case '^':
		return one(tCaret)
	case '<':
		if lx.peekAt(1) == '<' {
			return two(tShl)
		}
		if lx.peekAt(1) == '=' {
			return two(tLe)
		}
		return one(tLt)
	case '>':
		if lx.peekAt(1) == '>' {
			return two(tShr)
		}
		if lx.peekAt(1) == '=' {
			return two(tGe)
		}
		return one(tGt)
	case '=':
		if lx.peekAt(1) == '=' {
			return two(tEq)
		}
		return one(tAssign)
	case '!':
		if lx.peekAt(1) == '=' {
			return two(tNe)
		}
		return one(tBang)
	case '.':
		if isDigit(lx.peekAt(1)) {
			lx.errorf(p, "floats need a leading digit: write 0.%c..., not .%c...", lx.peekAt(1), lx.peekAt(1))
		} else {
			lx.errorf(p, "unexpected character '.'")
		}
	default:
		lx.errorf(p, "unexpected character %q", rune(b))
	}
	if lx.full {
		return token{}, false
	}
	// Skip the offending bytes (the whole '&&'/'||' pair, or one byte) and
	// keep scanning so later errors still surface.
	lx.advance()
	if (b == '&' || b == '|') && lx.peek() == b {
		lx.advance()
	}
	if b == '.' {
		for lx.off < len(lx.sc.data) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	return lx.next()
}

// scanNumber scans [0-9]+ ('.' [0-9]+)? ([eE] [+-]? [0-9]+)? — a float when
// a fraction or exponent is present, an integer otherwise. Values are
// converted later, where the sign context is known.
func (lx *lexer) scanNumber(p pos) (token, bool) {
	start := lx.off
	for lx.off < len(lx.sc.data) && isDigit(lx.peek()) {
		lx.advance()
	}
	isFloat := false
	if lx.peek() == '.' {
		if !isDigit(lx.peekAt(1)) {
			lx.errorf(p, "float literal needs digits after the '.'")
			if lx.full {
				return token{}, false
			}
			lx.advance()
			return token{kind: tFloat, text: string(lx.sc.data[start:lx.off]) + "0", pos: p}, true
		}
		isFloat = true
		lx.advance()
		for lx.off < len(lx.sc.data) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if e := lx.peek(); e == 'e' || e == 'E' {
		j := 1
		if s := lx.peekAt(1); s == '+' || s == '-' {
			j = 2
		}
		if isDigit(lx.peekAt(j)) {
			isFloat = true
			for range j {
				lx.advance()
			}
			for lx.off < len(lx.sc.data) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
	}
	if isIdentStart(lx.peek()) {
		lx.errorf(lx.pos(), "unexpected %q immediately after a number", rune(lx.peek()))
		if lx.full {
			return token{}, false
		}
		for lx.off < len(lx.sc.data) && isIdentByte(lx.peek()) {
			lx.advance()
		}
	}
	kind := tInt
	if isFloat {
		kind = tFloat
	}
	return token{kind: kind, text: string(lx.sc.data[start:lx.off]), pos: p}, true
}

// scanString scans a double-quoted literal with Go escape syntax; the
// token's text is the decoded value.
func (lx *lexer) scanString(p pos) (token, bool) {
	start := lx.off
	lx.advance() // opening quote
	for {
		if lx.off >= len(lx.sc.data) || lx.peek() == '\n' {
			lx.errorf(p, "unterminated string literal")
			if lx.full {
				return token{}, false
			}
			return token{kind: tString, text: "", pos: p}, true
		}
		if lx.peek() == '\\' && lx.off+1 < len(lx.sc.data) && lx.peekAt(1) != '\n' {
			lx.advance()
			lx.advance()
			continue
		}
		if lx.peek() == '"' {
			lx.advance()
			break
		}
		lx.advance()
	}
	raw := string(lx.sc.data[start:lx.off])
	text, err := strconv.Unquote(raw)
	if err != nil {
		lx.errorf(p, "invalid string literal %s", raw)
		if lx.full {
			return token{}, false
		}
		text = ""
	}
	return token{kind: tString, text: text, pos: p}, true
}
