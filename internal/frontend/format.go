// Format pretty-prints an ir.Loop as fgp source — the inverse of Parse.
// The output is normal-form: operator precedence decides parenthesization,
// floats print in shortest-round-trip form, and `@N` pseudo-line
// annotations appear only on statements whose Line diverges from the
// pre-order ordinal (loops built with ir.Builder — every built-in kernel
// and every fuzz-generated loop — never need one). Parsing the result
// yields a loop whose ir.MarshalLoop encoding is byte-identical to the
// original's, which the fuzz oracle enforces for every seed.
//
// Format assumes a valid loop (names are identifiers, kinds consistent) —
// the same contract as ir.MarshalLoop. Loops with non-identifier temp
// names cannot be expressed in the source language and will not reparse.

package frontend

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"fgp/internal/ir"
)

// Format renders the loop as fgp source text.
func Format(l *ir.Loop) string {
	f := &formatter{}
	fmt.Fprintf(&f.b, "kernel %q;\n", l.Name)

	if len(l.Scalars) > 0 {
		f.b.WriteByte('\n')
	}
	for _, s := range l.Scalars {
		if s.K == ir.F64 {
			fmt.Fprintf(&f.b, "param f64 %s = %s;\n", s.Name, fmtF64(s.F))
		} else {
			fmt.Fprintf(&f.b, "param i64 %s = %d;\n", s.Name, s.I)
		}
	}
	for _, a := range l.Arrays {
		f.b.WriteByte('\n')
		f.array(a)
	}

	fmt.Fprintf(&f.b, "\nfor %s = %d; %s < %d; %s += %d {\n",
		l.Index, l.Start, l.Index, l.End, l.Index, l.Step)
	f.stmts(l.Body, 1)
	f.b.WriteString("}\n")

	if len(l.LiveOut) > 0 {
		fmt.Fprintf(&f.b, "\nlive_out %s;\n", strings.Join(l.LiveOut, ", "))
	}
	return f.b.String()
}

type formatter struct {
	b       strings.Builder
	ordinal int
}

// arrayPerLine is how many initializer elements share a wrapped line.
const arrayPerLine = 8

func (f *formatter) array(a *ir.ArrayDecl) {
	items := make([]string, a.Len())
	if a.K == ir.F64 {
		for i, v := range a.InitF {
			items[i] = fmtF64(v)
		}
	} else {
		for i, v := range a.InitI {
			items[i] = strconv.FormatInt(v, 10)
		}
	}
	if len(items) <= arrayPerLine {
		fmt.Fprintf(&f.b, "array %s %s[] = {%s};\n", a.K, a.Name, strings.Join(items, ", "))
		return
	}
	fmt.Fprintf(&f.b, "array %s %s[] = {\n", a.K, a.Name)
	for i := 0; i < len(items); i += arrayPerLine {
		end := min(i+arrayPerLine, len(items))
		fmt.Fprintf(&f.b, "  %s,\n", strings.Join(items[i:end], ", "))
	}
	f.b.WriteString("};\n")
}

func (f *formatter) stmts(ss []ir.Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range ss {
		f.ordinal++
		prefix := ""
		if s.Line() != f.ordinal {
			prefix = fmt.Sprintf("@%d ", s.Line())
		}
		switch x := s.(type) {
		case *ir.Assign:
			f.b.WriteString(ind + prefix)
			switch d := x.Dest.(type) {
			case ir.TempDest:
				f.b.WriteString(d.Name)
			case *ir.ElemDest:
				f.b.WriteString(d.Array)
				f.b.WriteByte('[')
				f.expr(d.Index, 0)
				f.b.WriteByte(']')
			default:
				panic(fmt.Sprintf("frontend: Format: unknown destination type %T", x.Dest))
			}
			f.b.WriteString(" = ")
			f.expr(x.X, 0)
			f.b.WriteString(";\n")
		case *ir.If:
			f.b.WriteString(ind + prefix + "if ")
			f.expr(x.Cond, 0)
			f.b.WriteString(" {\n")
			f.stmts(x.Then, depth+1)
			if len(x.Else) > 0 {
				f.b.WriteString(ind + "} else {\n")
				f.stmts(x.Else, depth+1)
			}
			f.b.WriteString(ind + "}\n")
		default:
			panic(fmt.Sprintf("frontend: Format: unknown statement type %T", s))
		}
	}
}

// Precedence levels matching binLevel in parse.go; unary is 9.
var binPrecs = map[ir.BinOp]int{
	ir.Or: 1, ir.Xor: 2, ir.And: 3,
	ir.Eq: 4, ir.Ne: 4,
	ir.Lt: 5, ir.Le: 5, ir.Gt: 5, ir.Ge: 5,
	ir.Shl: 6, ir.Shr: 6,
	ir.Add: 7, ir.Sub: 7,
	ir.Mul: 8, ir.Div: 8, ir.Rem: 8,
}

var binSyms = map[ir.BinOp]string{
	ir.Add: "+", ir.Sub: "-", ir.Mul: "*", ir.Div: "/", ir.Rem: "%",
	ir.And: "&", ir.Or: "|", ir.Xor: "^", ir.Shl: "<<", ir.Shr: ">>",
	ir.Eq: "==", ir.Ne: "!=", ir.Lt: "<", ir.Le: "<=", ir.Gt: ">", ir.Ge: ">=",
}

const precUnary = 9

// expr writes e, parenthesizing when its precedence is below the context's
// (ctx is the minimum level the surrounding operator requires; left
// children get the operator's own level, right children one higher, so
// left-associative chains print without parens and reparse identically).
func (f *formatter) expr(e ir.Expr, ctx int) {
	switch x := e.(type) {
	case ir.ConstF:
		f.b.WriteString(fmtF64(x.V))
	case ir.ConstI:
		f.b.WriteString(strconv.FormatInt(x.V, 10))
	case ir.Temp:
		f.b.WriteString(x.Name)
	case *ir.Load:
		f.b.WriteString(x.Array)
		f.b.WriteByte('[')
		f.expr(x.Index, 0)
		f.b.WriteByte(']')
	case *ir.Un:
		f.un(x)
	case *ir.Bin:
		if x.Op == ir.Min || x.Op == ir.Max {
			// min/max are calls, not operators.
			f.b.WriteString(x.Op.String())
			f.b.WriteByte('(')
			f.expr(x.L, 0)
			f.b.WriteString(", ")
			f.expr(x.R, 0)
			f.b.WriteByte(')')
			return
		}
		p := binPrecs[x.Op]
		if p < ctx {
			f.b.WriteByte('(')
			f.bin(x, p)
			f.b.WriteByte(')')
			return
		}
		f.bin(x, p)
	default:
		panic(fmt.Sprintf("frontend: Format: unknown expression type %T", e))
	}
}

func (f *formatter) bin(x *ir.Bin, p int) {
	f.expr(x.L, p)
	f.b.WriteString(" " + binSyms[x.Op] + " ")
	f.expr(x.R, p+1)
}

func (f *formatter) un(x *ir.Un) {
	switch x.Op {
	case ir.Neg:
		f.b.WriteByte('-')
		// A literal directly after '-' would fold into a negative
		// constant on reparse — a different IR node. Parenthesize so
		// Un{Neg, Const} survives the round trip.
		switch x.X.(type) {
		case ir.ConstF, ir.ConstI:
			f.b.WriteByte('(')
			f.expr(x.X, 0)
			f.b.WriteByte(')')
		default:
			f.expr(x.X, precUnary)
		}
	case ir.Not:
		f.b.WriteByte('!')
		f.expr(x.X, precUnary)
	case ir.Sqrt, ir.Exp, ir.Log, ir.Abs, ir.Floor:
		f.b.WriteString(x.Op.String())
		f.b.WriteByte('(')
		f.expr(x.X, 0)
		f.b.WriteByte(')')
	case ir.CvtIF:
		f.b.WriteString("f64(")
		f.expr(x.X, 0)
		f.b.WriteByte(')')
	case ir.CvtFI:
		f.b.WriteString("i64(")
		f.expr(x.X, 0)
		f.b.WriteByte(')')
	default:
		panic(fmt.Sprintf("frontend: Format: unknown unary operator %v", x.Op))
	}
}

// fmtF64 renders a float so it reparses to the identical bits: shortest
// round-trip decimal with a forced '.0' on integral values (so the lexer
// sees a float, not an int), and the nan/inf keywords for the specials.
func fmtF64(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
