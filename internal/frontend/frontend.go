// Package frontend parses the fgp loop language: a small C-like surface
// syntax for the one-counted-loop kernels the compiler pipeline accepts.
// Parse lexes, parses, type-checks and lowers a source file to a validated
// *ir.Loop; Format pretty-prints a loop back to source. The two are exact
// inverses on the frontend subset: Parse(Format(l)) yields a loop whose
// ir.MarshalLoop encoding is byte-identical to l's, so a source-submitted
// kernel content-addresses into the same compile-cache entry as the
// equivalent hand-built or wire-encoded one.
//
// A program looks like:
//
//	kernel "dot";
//
//	param f64 acc = 0.0;
//	array f64 a[] = {0.5, 1.5, 2.5};
//	array f64 b[] = {1.0, 2.0, 3.0};
//
//	for i = 0; i < 3; i += 1 {
//	  acc = acc + a[i] * b[i];
//	}
//
//	live_out acc;
//
// Everything outside the subset — nested loops, while, compound
// assignment, mixed-kind arithmetic — is rejected with a positioned
// diagnostic explaining the remainder, never a panic: source text is
// untrusted input (it arrives over HTTP), so every failure is a
// *frontend.Error carrying line/col diagnostics with source snippets.
package frontend

import (
	"fmt"
	"strings"

	"fgp/internal/ir"
)

// Diagnostic is one positioned frontend error. Line and Col are 1-based;
// Snippet is the offending source line (trimmed and bounded).
type Diagnostic struct {
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Msg     string `json:"msg"`
	Snippet string `json:"snippet,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s", d.Line, d.Col, d.Msg)
}

// Error is the failure type every Parse path returns: at least one
// diagnostic, in source order, capped by Limits.MaxDiags.
type Error struct {
	Diags []Diagnostic
}

func (e *Error) Error() string {
	if len(e.Diags) == 0 {
		return "frontend: invalid source"
	}
	if len(e.Diags) == 1 {
		return "frontend: " + e.Diags[0].String()
	}
	return fmt.Sprintf("frontend: %s (and %d more diagnostics)",
		e.Diags[0], len(e.Diags)-1)
}

// RenderDiags formats diagnostics for a terminal, one "path:line:col:
// message" line per diagnostic with the offending source line underneath —
// the rendering the CLI tools print to stderr.
func RenderDiags(path string, diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s\n", path, d.Line, d.Col, d.Msg)
		if d.Snippet != "" {
			fmt.Fprintf(&b, "  | %s\n", d.Snippet)
		}
	}
	return b.String()
}

// Limits bounds the resources one Parse may consume, so pathological input
// (a megabyte of '(', a splat of a billion zeros) costs a diagnostic, not
// memory or stack. The zero value of any field means its default.
type Limits struct {
	// MaxDepth bounds syntactic nesting: blocks, parens, index
	// expressions. Default 64.
	MaxDepth int
	// MaxNodes bounds total tokens and AST nodes, including expanded
	// array-splat elements. Default 1<<20.
	MaxNodes int
	// MaxDiags bounds how many diagnostics accumulate before the parse
	// gives up. Default 20.
	MaxDiags int
}

// DefaultLimits returns the limits Parse applies.
func DefaultLimits() Limits {
	return Limits{MaxDepth: 64, MaxNodes: 1 << 20, MaxDiags: 20}
}

func (lim Limits) withDefaults() Limits {
	d := DefaultLimits()
	if lim.MaxDepth <= 0 {
		lim.MaxDepth = d.MaxDepth
	}
	if lim.MaxNodes <= 0 {
		lim.MaxNodes = d.MaxNodes
	}
	if lim.MaxDiags <= 0 {
		lim.MaxDiags = d.MaxDiags
	}
	return lim
}

// Parse lexes, parses, type-checks and lowers one fgp source file under
// DefaultLimits. On success the loop has passed ir.Validate; on failure the
// error is a *Error whose diagnostics all carry line/col positions.
func Parse(src []byte) (*ir.Loop, error) {
	return ParseWithLimits(src, DefaultLimits())
}

// ParseWithLimits is Parse with explicit resource bounds (the service uses
// tighter ones than the CLI default).
func ParseWithLimits(src []byte, lim Limits) (*ir.Loop, error) {
	lim = lim.withDefaults()
	sc := newSource(src)
	toks, lexDiags := lexAll(sc, lim)
	if len(lexDiags) > 0 {
		return nil, &Error{Diags: lexDiags}
	}
	f, parseDiags := parseFile(toks, sc, lim)
	if len(parseDiags) > 0 {
		return nil, &Error{Diags: parseDiags}
	}
	l, lowDiags := lower(f, sc, lim)
	if len(lowDiags) > 0 {
		return nil, &Error{Diags: lowDiags}
	}
	return l, nil
}
