package frontend

import (
	"math"
	"strings"
	"testing"

	"fgp/internal/ir"
	"fgp/internal/kernels"
)

// TestKernelRoundTrip is the acceptance criterion for the source front
// door: formatting each of the 18 built-in kernels and parsing the result
// must reproduce a loop whose canonical wire encoding is byte-identical to
// the hand-built kernel's. The compile cache content-addresses that
// encoding, so byte equality here IS cache-entry equality: an .fgp source
// for a kernel hits the artifact compiled for the builder version.
func TestKernelRoundTrip(t *testing.T) {
	for _, k := range kernels.All() {
		t.Run(k.Name, func(t *testing.T) {
			l := k.Build()
			src := Format(l)
			l2, err := Parse([]byte(src))
			if err != nil {
				t.Fatalf("formatted kernel failed to reparse: %v\nsource:\n%s", err, src)
			}
			mustEqualLoops(t, l, l2, src)
			// Builder-produced loops number statements by pre-order
			// ordinal, so their normal form needs no @ annotations.
			if strings.Contains(src, "@") {
				t.Errorf("builder kernel formatted with @ annotations:\n%s", src)
			}
		})
	}
}

// TestFormatIdempotent: Format(Parse(Format(l))) == Format(l). Together
// with TestKernelRoundTrip this pins Format as a normal form.
func TestFormatIdempotent(t *testing.T) {
	for _, k := range kernels.All() {
		l := k.Build()
		src := Format(l)
		l2, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if src2 := Format(l2); src2 != src {
			t.Errorf("%s: Format is not idempotent:\n--- first\n%s\n--- second\n%s", k.Name, src, src2)
		}
	}
}

// TestRoundTripExpressionShapes covers the operator corners the kernels
// may not reach: precedence inversions, folded negative literals, Neg of a
// literal (which must NOT fold), specials, and @ annotations.
func TestRoundTripExpressionShapes(t *testing.T) {
	neg := func(e ir.Expr) ir.Expr { return &ir.Un{Op: ir.Neg, X: e} }
	loops := []*ir.Loop{
		{
			Name: "prec", Index: "i", Start: 0, End: 2, Step: 1,
			Arrays: []*ir.ArrayDecl{{Name: "a", K: ir.F64, InitF: []float64{1, 2}}},
			Body: []ir.Stmt{
				// a[i] = (a[i] + 1.5) * -(2.0) — Neg of a literal.
				&ir.Assign{Src: 1, Dest: &ir.ElemDest{Array: "a", K: ir.F64, Index: ir.TI("i")},
					X: ir.MulE(ir.AddE(ir.LDF("a", ir.TI("i")), ir.F(1.5)), neg(ir.F(2)))},
				// t = a[i] - -3.25 — a folded negative literal operand.
				&ir.Assign{Src: 2, Dest: ir.DestTempF("t"),
					X: ir.SubE(ir.LDF("a", ir.TI("i")), ir.F(-3.25))},
				// u = -(t + 1.0) / t — unary over a parenthesized sum.
				&ir.Assign{Src: 3, Dest: ir.DestTempF("u"),
					X: ir.DivE(neg(ir.AddE(ir.TF("t"), ir.F(1))), ir.TF("t"))},
			},
			LiveOut: []string{"t", "u"},
		},
		{
			Name: "ints", Index: "j", Start: 1, End: 9, Step: 2,
			Arrays: []*ir.ArrayDecl{{Name: "g", K: ir.I64, InitI: []int64{7, 8, 9, 10, 11, 12, 13, 14, 15}}},
			Scalars: []ir.ScalarDecl{{Name: "m", K: ir.I64, I: -5}},
			Body: []ir.Stmt{
				// g[j] = (g[j] ^ m) & (m | 3) << 1 — shift/bitwise stack.
				&ir.Assign{Src: 1, Dest: &ir.ElemDest{Array: "g", K: ir.I64, Index: ir.TI("j")},
					X: ir.AndE(ir.XorE(ir.LDI("g", ir.TI("j")), ir.TI("m")),
						ir.ShlE(ir.OrE(ir.TI("m"), ir.I(3)), ir.I(1)))},
				// b = !(g[j] % 2 == 0) — Not over a comparison.
				&ir.Assign{Src: 2, Dest: ir.DestTempI("b"),
					X: ir.NotE(ir.EqE(ir.RemE(ir.LDI("g", ir.TI("j")), ir.I(2)), ir.I(0)))},
				&ir.If{Src: 3, Cond: ir.TI("b"), Then: []ir.Stmt{
					&ir.Assign{Src: 4, Dest: ir.DestTempI("c"), X: ir.MinE(ir.TI("m"), ir.I(-1))},
				}, Else: []ir.Stmt{
					&ir.Assign{Src: 5, Dest: ir.DestTempI("c"), X: ir.MaxE(ir.TI("m"), neg(ir.I(1)))},
				}},
				&ir.Assign{Src: 6, Dest: ir.DestTempI("d"), X: ir.FToI(ir.IToF(ir.TI("c")))},
			},
			LiveOut: []string{"d"},
		},
		{
			// Src lines diverging from pre-order ordinals force @ output.
			Name: "lines", Index: "i", Start: 0, End: 1, Step: 1,
			Arrays: []*ir.ArrayDecl{{Name: "a", K: ir.F64, InitF: []float64{0}}},
			Body: []ir.Stmt{
				&ir.Assign{Src: 41, Dest: ir.DestTempF("t"), X: ir.F(1)},
				&ir.Assign{Src: 2, Dest: &ir.ElemDest{Array: "a", K: ir.F64, Index: ir.TI("i")}, X: ir.TF("t")},
			},
		},
		{
			Name: "specials", Index: "i", Start: 0, End: 1, Step: 1,
			Arrays: []*ir.ArrayDecl{{Name: "a", K: ir.F64, InitF: []float64{1.5}}},
			Scalars: []ir.ScalarDecl{
				{Name: "qnan", K: ir.F64, F: nan()},
				{Name: "pinf", K: ir.F64, F: inf(1)},
				{Name: "ninf", K: ir.F64, F: inf(-1)},
			},
			Body: []ir.Stmt{
				&ir.Assign{Src: 1, Dest: &ir.ElemDest{Array: "a", K: ir.F64, Index: ir.TI("i")},
					X: ir.MaxE(ir.TF("qnan"), ir.MinE(ir.TF("pinf"), ir.TF("ninf")))},
			},
		},
	}
	for _, l := range loops {
		t.Run(l.Name, func(t *testing.T) {
			if err := ir.Validate(l); err != nil {
				t.Fatalf("test loop invalid: %v", err)
			}
			src := Format(l)
			l2, err := Parse([]byte(src))
			if err != nil {
				t.Fatalf("reparse: %v\nsource:\n%s", err, src)
			}
			mustEqualLoops(t, l, l2, src)
		})
	}
}

// TestFormatAnnotatesDivergentLines pins the @ emission rule directly.
func TestFormatAnnotatesDivergentLines(t *testing.T) {
	l := mustParse(t, `
array f64 a[] = {1.0};
for i = 0; i < 1; i += 1 {
  @9 t = 1.0;
  a[i] = t;
}
`)
	src := Format(l)
	if !strings.Contains(src, "@9 t = 1.0;") {
		t.Errorf("annotation lost:\n%s", src)
	}
	if strings.Contains(src, "@2") {
		t.Errorf("ordinal-matching line annotated:\n%s", src)
	}
}

func nan() float64      { return math.NaN() }
func inf(s int) float64 { return math.Inf(s) }
