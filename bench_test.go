package fgp

// One benchmark per table and figure of the paper's evaluation (Section V).
// Each benchmark times the simulator executing the compiled kernels (the
// wall-clock numbers measure this reproduction's own speed) and reports the
// paper's quantities — simulated speedup over the sequential baseline — as
// custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every row the paper plots. cmd/fgpexp prints the same data as
// aligned tables with the paper's published values alongside.

import (
	"fmt"
	"testing"

	"fgp/internal/core"
	"fgp/internal/experiments"
	"fgp/internal/kernels"
)

// compileAll builds artifacts for every kernel at the given core count,
// fanning compilations out across the CPU so benchmark setup stays cheap.
func compileAll(b *testing.B, cores int, mod func(*core.Options)) map[string]*core.Artifact {
	b.Helper()
	ks := kernels.All()
	built := make([]*core.Artifact, len(ks))
	err := experiments.ParallelEach(len(ks), 0, func(i int) error {
		opt := core.DefaultOptions(cores)
		if mod != nil {
			mod(&opt)
		}
		a, err := core.Compile(ks[i].Build(), opt)
		if err != nil {
			return fmt.Errorf("%s: %w", ks[i].Name, err)
		}
		built[i] = a
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	arts := map[string]*core.Artifact{}
	for i, k := range ks {
		arts[k.Name] = built[i]
	}
	return arts
}

func seqCycles(b *testing.B) map[string]int64 {
	b.Helper()
	ks := kernels.All()
	cycles := make([]int64, len(ks))
	err := experiments.ParallelEach(len(ks), 0, func(i int) error {
		a, err := core.CompileSequential(ks[i].Build())
		if err != nil {
			return fmt.Errorf("%s: %w", ks[i].Name, err)
		}
		res, err := a.RunDefault()
		if err != nil {
			return fmt.Errorf("%s: %w", ks[i].Name, err)
		}
		cycles[i] = res.Cycles
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	out := map[string]int64{}
	for i, k := range ks {
		out[k.Name] = cycles[i]
	}
	return out
}

// BenchmarkFig12 regenerates Figure 12: per-kernel speedup on 2 and 4
// cores. Metrics: speedup (simulated), simMcycles (simulated cycles of the
// parallel run).
func BenchmarkFig12(b *testing.B) {
	for _, cores := range []int{2, 4} {
		cores := cores
		b.Run(fmt.Sprintf("%dcore", cores), func(b *testing.B) {
			seq := seqCycles(b)
			arts := compileAll(b, cores, nil)
			for _, k := range kernels.All() {
				k := k
				b.Run(k.Name, func(b *testing.B) {
					a := arts[k.Name]
					var cycles int64
					for i := 0; i < b.N; i++ {
						res, err := a.RunDefault()
						if err != nil {
							b.Fatal(err)
						}
						cycles = res.Cycles
					}
					b.ReportMetric(float64(seq[k.Name])/float64(cycles), "speedup")
					b.ReportMetric(float64(cycles)/1e6, "simMcycles")
				})
			}
		})
	}
}

// BenchmarkFig12Sweep times the whole Figure 12 sweep (18 kernels, compile
// and simulate at 1, 2, and 4 cores) end to end through the experiments
// Runner — the number cmd/fgpbench tracks for host-performance regressions.
// Sub-benchmarks cover the burst engine on a serial and a saturated worker
// pool plus the reference per-instruction scheduler.
func BenchmarkFig12Sweep(b *testing.B) {
	modes := []struct {
		name      string
		workers   int
		reference bool
	}{
		{"burst/parallel", 0, false},
		{"burst/serial", 1, false},
		{"reference/serial", 1, true},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.NewRunner()
				r.SetWorkers(m.workers)
				r.SetReference(m.reference)
				if _, err := experiments.Fig12(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 regenerates Table II: whole-application expected
// speedups (Amdahl combination of Fig 12 with Table I coverage).
func BenchmarkTable2(b *testing.B) {
	r := experiments.NewRunner()
	var rows []experiments.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table2(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		b.ReportMetric(row.Speedup4, row.App+"_4c")
	}
}

// BenchmarkTable3 regenerates Table III's compiler statistics: the
// benchmark times compilation; per-kernel fibers/deps/comm are reported as
// metrics on sub-benchmarks.
func BenchmarkTable3(b *testing.B) {
	for _, k := range kernels.All() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			var a *core.Artifact
			var err error
			for i := 0; i < b.N; i++ {
				a, err = core.Compile(k.Build(), core.DefaultOptions(4))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(a.Report.InitialFibers), "fibers")
			b.ReportMetric(float64(a.Report.DataDeps), "deps")
			b.ReportMetric(a.Report.LoadBalance, "balance")
			b.ReportMetric(float64(a.Report.CommOps), "commOps")
		})
	}
}

// BenchmarkFig13 regenerates Figure 13: 4-core speedup as the queue
// transfer latency grows.
func BenchmarkFig13(b *testing.B) {
	seq := seqCycles(b)
	arts := compileAll(b, 4, nil)
	for _, lat := range []int64{5, 20, 50, 100} {
		lat := lat
		b.Run(fmt.Sprintf("latency%d", lat), func(b *testing.B) {
			for _, k := range kernels.All() {
				k := k
				b.Run(k.Name, func(b *testing.B) {
					a := arts[k.Name]
					cfg := a.MachineConfig()
					cfg.TransferLatency = lat
					var cycles int64
					for i := 0; i < b.N; i++ {
						res, err := a.Run(cfg)
						if err != nil {
							b.Fatal(err)
						}
						cycles = res.Cycles
					}
					b.ReportMetric(float64(seq[k.Name])/float64(cycles), "speedup")
				})
			}
		})
	}
}

// BenchmarkFig14 regenerates Figure 14: the effect of control-flow
// speculation at 4 cores.
func BenchmarkFig14(b *testing.B) {
	seq := seqCycles(b)
	base := compileAll(b, 4, nil)
	spec := compileAll(b, 4, func(o *core.Options) { o.Speculate = true })
	for _, k := range kernels.All() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			var bc, sc int64
			for i := 0; i < b.N; i++ {
				bres, err := base[k.Name].RunDefault()
				if err != nil {
					b.Fatal(err)
				}
				sres, err := spec[k.Name].RunDefault()
				if err != nil {
					b.Fatal(err)
				}
				bc, sc = bres.Cycles, sres.Cycles
			}
			b.ReportMetric(float64(seq[k.Name])/float64(bc), "speedup")
			b.ReportMetric(float64(seq[k.Name])/float64(sc), "specSpeedup")
		})
	}
}

// BenchmarkThroughputAblation regenerates the Section III-B throughput
// (DAG-constraining) heuristic ablation.
func BenchmarkThroughputAblation(b *testing.B) {
	seq := seqCycles(b)
	base := compileAll(b, 4, nil)
	dag := compileAll(b, 4, func(o *core.Options) { o.Throughput = true })
	for _, k := range kernels.All() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			var bc, dc int64
			for i := 0; i < b.N; i++ {
				bres, err := base[k.Name].RunDefault()
				if err != nil {
					b.Fatal(err)
				}
				dres, err := dag[k.Name].RunDefault()
				if err != nil {
					b.Fatal(err)
				}
				bc, dc = bres.Cycles, dres.Cycles
			}
			b.ReportMetric(float64(seq[k.Name])/float64(bc), "speedup")
			b.ReportMetric(float64(seq[k.Name])/float64(dc), "dagSpeedup")
		})
	}
}

// BenchmarkCompile times the full compiler pipeline (with profile feedback)
// for the largest kernel, a compile-speed regression guard.
func BenchmarkCompile(b *testing.B) {
	k, err := kernels.ByName("irs-5")
	if err != nil {
		b.Fatal(err)
	}
	l := k.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(l, core.DefaultOptions(4)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulator throughput (host ns per
// simulated instruction) on the heaviest kernel.
func BenchmarkSimulator(b *testing.B) {
	k, err := kernels.ByName("irs-1")
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.Compile(k.Build(), core.DefaultOptions(4))
	if err != nil {
		b.Fatal(err)
	}
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := a.RunDefault()
		if err != nil {
			b.Fatal(err)
		}
		instrs = 0
		for _, n := range res.PerCoreInstrs {
			instrs += n
		}
	}
	b.ReportMetric(float64(instrs), "simInstrs")
}
