// Package fgp is a from-scratch reproduction of "Using Multiple Threads to
// Accelerate Single Thread Performance" (Sura, O'Brien, Brunheroto — IPDPS
// 2014): a compiler that automatically transforms sequential loop bodies
// into fine-grained parallel code for one primary and several secondary
// cores, communicating through simulated low-latency hardware queues.
//
// The package is a thin facade over the internal pipeline:
//
//	loop := ...                      // build an ir.Loop (see fgp/internal/ir)
//	seq, _ := fgp.CompileSequential(loop)
//	par, _ := fgp.Compile(loop, fgp.Options{Cores: 4, Schedule: true})
//	sres, _ := seq.RunDefault()
//	pres, _ := par.RunDefault()
//	speedup := float64(sres.Cycles) / float64(pres.Cycles)
//
// See the examples/ directory for complete programs and internal/kernels
// for the 18 Sequoia-style kernels used in the paper's evaluation.
package fgp

import (
	"fgp/internal/codegraph"
	"fgp/internal/core"
	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/sim"
)

// Options selects compiler behavior; see core.Options.
type Options = core.Options

// Weights tunes the code-graph merge heuristics.
type Weights = codegraph.Weights

// Artifact is a compiled kernel: machine programs plus the compiler report.
type Artifact = core.Artifact

// Report carries per-kernel compiler statistics (Table III of the paper).
type Report = core.Report

// Config parameterizes the simulated machine (cores, queue length, queue
// transfer latency, instruction latencies, L1 model).
type Config = sim.Config

// Result summarizes one simulation run.
type Result = sim.Result

// Compile transforms the loop into fine-grained parallel code.
func Compile(l *ir.Loop, opt Options) (*Artifact, error) { return core.Compile(l, opt) }

// CompileSequential compiles the unmodified single-core baseline.
func CompileSequential(l *ir.Loop) (*Artifact, error) { return core.CompileSequential(l) }

// DefaultOptions returns the paper's main-experiment compiler settings for
// the given core count.
func DefaultOptions(cores int) Options { return core.DefaultOptions(cores) }

// DefaultConfig returns the paper's machine configuration (queue length 20,
// transfer latency 5) for the given core count.
func DefaultConfig(cores int) Config { return sim.DefaultConfig(cores) }

// Interpret runs the loop on the reference interpreter (the semantics
// oracle) without any timing model.
func Interpret(l *ir.Loop) (*interp.Result, error) { return interp.Run(l) }

// Speedup compiles and runs the loop sequentially and on n cores and
// returns sequential-cycles / parallel-cycles.
func Speedup(l *ir.Loop, n int) (float64, error) {
	seq, err := CompileSequential(l)
	if err != nil {
		return 0, err
	}
	sres, err := seq.RunDefault()
	if err != nil {
		return 0, err
	}
	par, err := Compile(l, DefaultOptions(n))
	if err != nil {
		return 0, err
	}
	pres, err := par.RunDefault()
	if err != nil {
		return 0, err
	}
	return float64(sres.Cycles) / float64(pres.Cycles), nil
}
