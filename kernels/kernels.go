// Package kernels exposes the 18 evaluation kernels of the paper (Table I)
// for use by examples, benchmarks and downstream experiments. See
// fgp/internal/kernels for the construction details and the documented
// substitutions for the original Sequoia sources.
package kernels

import "fgp/internal/kernels"

// Kernel is one evaluation loop plus the paper's published numbers for it.
type Kernel = kernels.Kernel

// All returns the 18 kernels in Table I order.
func All() []*Kernel { return kernels.All() }

// ByName finds a kernel by its Table I name (e.g. "lammps-1").
func ByName(name string) (*Kernel, error) { return kernels.ByName(name) }

// Apps returns the four application names in Table II order.
func Apps() []string { return kernels.Apps() }

// ByApp returns the kernels of one application.
func ByApp(app string) []*Kernel { return kernels.ByApp(app) }
