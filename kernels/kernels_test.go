package kernels_test

import (
	"testing"

	"fgp"
	"fgp/kernels"
)

// TestFacadeEndToEnd compiles a kernel obtained through the public facade
// and verifies it — the downstream-user workflow.
func TestFacadeEndToEnd(t *testing.T) {
	k, err := kernels.ByName("umt2k-5")
	if err != nil {
		t.Fatal(err)
	}
	a, err := fgp.Compile(k.Build(), fgp.DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(a.MachineConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeListing(t *testing.T) {
	if got := len(kernels.All()); got != 18 {
		t.Fatalf("%d kernels", got)
	}
	apps := kernels.Apps()
	total := 0
	for _, app := range apps {
		total += len(kernels.ByApp(app))
	}
	if total != 18 {
		t.Fatalf("app grouping covers %d kernels", total)
	}
	if _, err := kernels.ByName("not-a-kernel"); err == nil {
		t.Error("unknown kernel must error")
	}
}
