// Speculation: the paper's Figure 10 pattern.
//
//	if (cond(ptrVar)) { v = Func2(...) } else { v = Func3(...) }
//
// Both branch bodies are pure, so the compiler can execute them ahead of
// time on different cores, before the condition value is known, and commit
// the right result afterwards — without ever needing rollback. This
// program shows the transformation (the rewritten loop), verifies that
// semantics are preserved bit-for-bit, and compares the speedups.
//
// Run with: go run ./examples/speculation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fgp"
	"fgp/ir"
)

const n = 2500

func buildLoop() *ir.Loop {
	rng := rand.New(rand.NewSource(7))
	fl := func(lo, hi float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = lo + (hi-lo)*rng.Float64()
		}
		return s
	}
	b := ir.NewBuilder("fig10", "i", 0, n, 1)
	b.ArrayF("p", fl(-1, 1))
	b.ArrayF("u", fl(0.1, 2))
	b.ArrayF("v", fl(0.1, 2))
	b.ArrayF("out", make([]float64, n))
	th := b.ScalarF("th", 0.0)

	i := b.Idx()
	cnd := b.Def("cnd", ir.GtE(ir.LDF("p", i), th))
	b.If(cnd, func() {
		// "Func2": an expensive pure function of u.
		t := b.Def("t2", ir.SqrtE(ir.AddE(ir.MulE(ir.LDF("u", i), ir.LDF("u", i)), ir.F(1))))
		b.Def("val", ir.MulE(t, ir.ExpE(ir.NegE(ir.LDF("u", i)))))
	}, func() {
		// "Func3": an expensive pure function of v.
		t := b.Def("t3", ir.LogE(ir.AddE(ir.LDF("v", i), ir.F(1))))
		b.Def("val", ir.AddE(ir.MulE(t, t), ir.LDF("v", i)))
	})
	b.StoreF("out", i, b.T("val"))
	return b.MustBuild()
}

func main() {
	loop := buildLoop()

	seq, err := fgp.CompileSequential(loop)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := seq.RunDefault()
	if err != nil {
		log.Fatal(err)
	}

	base, err := fgp.Compile(loop, fgp.DefaultOptions(3))
	if err != nil {
		log.Fatal(err)
	}
	bres, err := base.Verify(base.MachineConfig())
	if err != nil {
		log.Fatal(err)
	}

	opt := fgp.DefaultOptions(3)
	opt.Speculate = true
	spec, err := fgp.Compile(loop, opt)
	if err != nil {
		log.Fatal(err)
	}
	pres, err := spec.Verify(spec.MachineConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("original loop:")
	fmt.Print(ir.Print(loop))
	fmt.Println("\nafter control-flow speculation (both branches hoisted, selects remain):")
	fmt.Print(ir.Print(spec.Loop))

	fmt.Printf("\nsequential:            %d cycles\n", sres.Cycles)
	fmt.Printf("3 cores, no spec:      %d cycles (speedup %.2f)\n", bres.Cycles, float64(sres.Cycles)/float64(bres.Cycles))
	fmt.Printf("3 cores, speculation:  %d cycles (speedup %.2f, %d if rewritten, verified)\n",
		pres.Cycles, float64(sres.Cycles)/float64(pres.Cycles), spec.Report.SpeculatedIfs)
	fmt.Println("\nWith speculation both Func2 and Func3 run every iteration, ahead of the")
	fmt.Println("condition; only the select waits for it. No store is speculative, so no")
	fmt.Println("rollback machinery is needed (Section III-H of the paper).")
	fmt.Println()
	fmt.Println("Note the trade: speculation removes the condition wait from the critical")
	fmt.Println("path at the cost of executing both branches. On this substrate the")
	fmt.Println("hardware queues already hide most of that wait across iterations, so the")
	fmt.Println("extra work frequently dominates — see EXPERIMENTS.md for the Fig 14")
	fmt.Println("analysis and the machine conditions under which speculation pays off.")
}
