// Pipeline: the paper's Figure 2 — a loop from lammps whose body the
// compiler splits into a pipeline across 3 cores, with SEND/RECV pairs
// (enqueue/dequeue in this implementation) carrying values between the
// stages.
//
// The loop here follows Fig 2's structure: a neighbor-indexed distance
// computation feeding a force evaluation feeding an accumulation. The
// program compiles it for 3 cores, shows which fibers landed on which
// core, and demonstrates that throughput is set by the slowest stage
// rather than by the sum of the stages.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fgp"
	"fgp/ir"
)

const n = 3000

func buildLoop() *ir.Loop {
	rng := rand.New(rand.NewSource(42))
	fl := func(lo, hi float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = lo + (hi-lo)*rng.Float64()
		}
		return s
	}
	idx := make([]int64, n)
	for i := range idx {
		idx[i] = rng.Int63n(n)
	}

	b := ir.NewBuilder("lammps-fig2", "i", 0, n, 1)
	b.ArrayF("x", fl(0, 10))
	b.ArrayF("y", fl(0, 10))
	b.ArrayI("nbr", idx)
	b.ArrayF("coef", fl(0.1, 0.9))
	b.ArrayF("f", make([]float64, n))
	b.ArrayF("e", make([]float64, n))
	cut := b.ScalarF("cut", 40.0)

	i := b.Idx()
	// Stage 1: gather and distance.
	j := b.Def("j", ir.LDI("nbr", i))
	dx := b.Def("dx", ir.SubE(ir.LDF("x", i), ir.LDF("x", j)))
	dy := b.Def("dy", ir.SubE(ir.LDF("y", i), ir.LDF("y", j)))
	r2 := b.Def("r2", ir.AddE(ir.AddE(ir.MulE(dx, dx), ir.MulE(dy, dy)), ir.F(0.0625)))
	// Stage 2: pair force.
	rinv := b.Def("rinv", ir.DivE(ir.F(1), r2))
	r6 := b.Def("r6", ir.MulE(ir.MulE(rinv, rinv), rinv))
	fp := b.Def("fp", ir.MulE(ir.MulE(r6, ir.SubE(r6, ir.F(0.5))), ir.LDF("coef", i)))
	sw := b.Def("sw", ir.MaxE(ir.SubE(cut, r2), ir.F(0)))
	// Stage 3: scale and store.
	b.StoreF("f", i, ir.MulE(fp, ir.MulE(sw, dx)))
	b.StoreF("e", i, ir.MulE(ir.MulE(fp, r2), ir.F(0.25)))
	return b.MustBuild()
}

func main() {
	loop := buildLoop()

	seq, err := fgp.CompileSequential(loop)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := seq.RunDefault()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %d cycles\n\n", sres.Cycles)

	for cores := 2; cores <= 3; cores++ {
		par, err := fgp.Compile(loop, fgp.DefaultOptions(cores))
		if err != nil {
			log.Fatal(err)
		}
		res, err := par.Verify(par.MachineConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d cores: %d cycles, speedup %.2f, %d SEND/RECV pairs per iteration\n",
			cores, res.Cycles, float64(sres.Cycles)/float64(res.Cycles), par.Report.Transfers)
		for pi, fibers := range par.Parts.Parts {
			fmt.Printf("  core %d runs fibers %v (%d compute ops)\n", pi, fibers, par.Report.ComputeOps[pi])
		}
		fmt.Println()
	}
	fmt.Println("The pipelined split keeps every stage busy: throughput is set by the")
	fmt.Println("slowest stage, and the queues carry each iteration's dx/fp values from")
	fmt.Println("stage to stage exactly like the SEND/RECV pairs of the paper's Fig 2.")
}
