// Quickstart: the paper's Figure 1 example.
//
// The snippet
//
//	x = a*b + c*d
//	y = c*d + e
//	z = x * y
//
// has fine-grained parallelism: the two multiplies and the two adds feeding
// x and y are independent until the final product. This program authors the
// snippet as a loop over arrays, compiles it for 1 and 2 cores, verifies
// both against the reference interpreter, and prints the cycle counts and
// the communication the compiler inserted.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fgp"
	"fgp/ir"
)

const n = 4096

func buildLoop() *ir.Loop {
	mk := func(f func(i int) float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = f(i)
		}
		return s
	}
	b := ir.NewBuilder("fig1", "i", 0, n, 1)
	b.ArrayF("a", mk(func(i int) float64 { return 1.0 + float64(i%7)*0.25 }))
	b.ArrayF("b", mk(func(i int) float64 { return 2.0 - float64(i%5)*0.125 }))
	b.ArrayF("c", mk(func(i int) float64 { return 0.5 + float64(i%3) }))
	b.ArrayF("d", mk(func(i int) float64 { return 1.5 + float64(i%11)*0.0625 }))
	b.ArrayF("e", mk(func(i int) float64 { return float64(i%13) * 0.5 }))
	b.ArrayF("x", make([]float64, n))
	b.ArrayF("y", make([]float64, n))
	b.ArrayF("z", make([]float64, n))

	i := b.Idx()
	x := b.Def("x", ir.AddE(ir.MulE(ir.LDF("a", i), ir.LDF("b", i)), ir.MulE(ir.LDF("c", i), ir.LDF("d", i))))
	y := b.Def("y", ir.AddE(ir.MulE(ir.LDF("c", i), ir.LDF("d", i)), ir.LDF("e", i)))
	b.StoreF("x", i, x)
	b.StoreF("y", i, y)
	b.StoreF("z", i, ir.MulE(x, y))
	return b.MustBuild()
}

func main() {
	loop := buildLoop()
	fmt.Print(ir.Print(loop))

	seq, err := fgp.CompileSequential(loop)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := seq.Verify(seq.MachineConfig())
	if err != nil {
		log.Fatal(err)
	}

	par, err := fgp.Compile(loop, fgp.DefaultOptions(2))
	if err != nil {
		log.Fatal(err)
	}
	pres, err := par.Verify(par.MachineConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsequential: %d cycles on 1 core\n", sres.Cycles)
	fmt.Printf("parallel:   %d cycles on 2 cores (verified bit-identical)\n", pres.Cycles)
	fmt.Printf("speedup:    %.2f\n", float64(sres.Cycles)/float64(pres.Cycles))
	fmt.Printf("\ncompiler report: %d fibers, %d data deps, %d queue ops per iteration\n",
		par.Report.InitialFibers, par.Report.DataDeps, par.Report.CommOps)
	fmt.Printf("queue traffic:   %d transfers through %d core pairs\n",
		pres.Transfers, pres.PairsUsed)
}
