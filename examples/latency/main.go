// Latency: the paper's Fig 11/Fig 13 territory — how the queue transfer
// latency shapes fine-grained parallel performance.
//
// Two loops are compiled for 4 cores and swept across transfer latencies:
//
//   - a streaming stencil whose iterations are independent (latency is
//     absorbed by the queues' slack, like irs-1 in the paper), and
//   - a swept recurrence whose carried dependence crosses cores every
//     iteration (latency lands on the critical path, like umt2k-6).
//
// Run with: go run ./examples/latency
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fgp"
	"fgp/ir"
)

const n = 2000

func streaming() *ir.Loop {
	rng := rand.New(rand.NewSource(11))
	fl := func() []float64 {
		s := make([]float64, n+2)
		for i := range s {
			s[i] = rng.Float64()
		}
		return s
	}
	b := ir.NewBuilder("streaming", "i", 1, n, 1)
	b.ArrayF("a", fl())
	b.ArrayF("c", fl())
	b.ArrayF("o", make([]float64, n+2))
	i := b.Idx()
	l := b.Def("l", ir.LDF("a", ir.SubE(i, ir.I(1))))
	c := b.Def("c", ir.LDF("a", i))
	r := b.Def("r", ir.LDF("a", ir.AddE(i, ir.I(1))))
	s := b.Def("s", ir.MulE(ir.AddE(ir.AddE(l, c), r), ir.LDF("c", i)))
	q := b.Def("q", ir.SqrtE(ir.AddE(ir.MulE(s, s), ir.F(1))))
	b.StoreF("o", i, ir.DivE(s, q))
	return b.MustBuild()
}

func swept() *ir.Loop {
	rng := rand.New(rand.NewSource(12))
	src := make([]float64, n)
	for i := range src {
		src[i] = rng.Float64()
	}
	b := ir.NewBuilder("swept", "i", 1, n, 1)
	b.ArrayF("s", src)
	b.ArrayF("w", make([]float64, n))
	i := b.Idx()
	prev := b.Def("prev", ir.LDF("w", ir.SubE(i, ir.I(1))))
	t := b.Def("t", ir.AddE(ir.LDF("s", i), ir.MulE(prev, ir.F(0.4))))
	u := b.Def("u", ir.MulE(t, ir.SubE(ir.F(2), t)))
	b.StoreF("w", i, ir.MulE(u, ir.F(0.9)))
	return b.MustBuild()
}

func main() {
	lats := []int64{5, 20, 50, 100}
	for _, build := range []func() *ir.Loop{streaming, swept} {
		loop := build()
		seq, err := fgp.CompileSequential(loop)
		if err != nil {
			log.Fatal(err)
		}
		sres, err := seq.RunDefault()
		if err != nil {
			log.Fatal(err)
		}
		par, err := fgp.Compile(loop, fgp.DefaultOptions(4))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s (seq %d cycles):", loop.Name, sres.Cycles)
		for _, lat := range lats {
			cfg := par.MachineConfig()
			cfg.TransferLatency = lat
			res, err := par.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  L=%-3d %.2fx", lat, float64(sres.Cycles)/float64(res.Cycles))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The streaming loop keeps its speedup at any latency: iterations are")
	fmt.Println("independent, so the 20-slot queues let producer cores run ahead and the")
	fmt.Println("transfer latency becomes a fixed pipeline-fill cost. The swept loop's")
	fmt.Println("carried dependence crosses cores every iteration, so each added cycle of")
	fmt.Println("latency lands directly on the recurrence — the mechanism behind the")
	fmt.Println("paper's Figure 13 degradation.")
}
