// Command fgpbench is the host-performance regression harness: it times the
// full Figure 12 sweep (every kernel compiled and simulated at 1, 2, and 4
// cores) on the burst engine and on the retained per-instruction reference
// scheduler, serial and parallel, and emits a machine-readable report.
//
// The report (BENCH_sim.json, committed at the repo root) records total
// sweep wall-clock, the compile/simulate split, host nanoseconds per
// simulated cycle, and the speedups of the burst engine and the parallel
// runner over the reference-serial baseline. Regenerate it after simulator
// or compiler changes with:
//
//	go run ./cmd/fgpbench -o BENCH_sim.json
//
// Simulated results are bit-identical across every mode (the determinism
// tests in internal/sim enforce this); only host time may change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"fgp/internal/experiments"
	"fgp/internal/kernels"
)

// Mode is one engine/worker configuration of the sweep.
type Mode struct {
	Name      string `json:"name"`
	Engine    string `json:"engine"`  // "burst" or "reference"
	Workers   int    `json:"workers"` // 0 = one per available CPU
	Reference bool   `json:"-"`

	// ColdNs is the best wall-clock of the full sweep from an empty cache:
	// compilation plus simulation. WarmNs re-runs the sweep with artifacts
	// and sequential baselines cached, so it isolates simulation time.
	ColdNs  int64   `json:"cold_ns"`
	WarmNs  int64   `json:"warm_ns"`
	ColdRun []int64 `json:"cold_runs_ns"`
	WarmRun []int64 `json:"warm_runs_ns"`

	// NsPerSimCycle is host-warm nanoseconds per simulated cycle across the
	// sweep's parallel runs (the simulation work a warm sweep repeats).
	NsPerSimCycle float64 `json:"ns_per_simulated_cycle"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Benchmark  string `json:"benchmark"`
	Kernels    int    `json:"kernels"`
	Repeats    int    `json:"repeats"`
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`

	// TotalSimCycles is the number of simulated cycles a warm sweep
	// executes (the 2- and 4-core run of every kernel); identical across
	// modes by construction.
	TotalSimCycles int64 `json:"total_simulated_cycles"`

	Modes []Mode `json:"modes"`

	// Headline ratios, all versus the reference-serial cold sweep.
	SpeedupBurstSerial   float64 `json:"speedup_burst_serial"`
	SpeedupBurstParallel float64 `json:"speedup_burst_parallel"`

	// Baseline optionally records an externally measured cold sweep of an
	// older checkout (via -baseline/-baseline-ns), e.g. the seed
	// implementation timed with this tool's -once flag built at that
	// commit, A/B-interleaved with the current binary on the same machine.
	Baseline *Baseline `json:"baseline,omitempty"`
}

// Baseline is a cross-version comparison point.
type Baseline struct {
	Name   string `json:"name"`
	ColdNs int64  `json:"cold_ns"`

	// Speedups of the current modes' cold sweeps over this baseline.
	SpeedupBurstSerial   float64 `json:"speedup_burst_serial"`
	SpeedupBurstParallel float64 `json:"speedup_burst_parallel"`
}

func main() {
	repeats := flag.Int("repeats", 5, "timed repetitions per mode (best is reported)")
	workers := flag.Int("workers", 0, "worker pool size for the parallel mode (0 = one per CPU)")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	once := flag.String("once", "", "run a single cold sweep in the named mode and print its nanoseconds (for cross-version A/B runs)")
	baseName := flag.String("baseline", "", "name of a baseline checkout to record in the report")
	baseNs := flag.Int64("baseline-ns", 0, "externally measured cold-sweep nanoseconds of the -baseline checkout")
	baseCmd := flag.String("baseline-cmd", "", "command printing one cold-sweep nanosecond count (e.g. an older checkout's 'fgpbench -once burst-parallel' binary); run interleaved with the modes each repeat, overriding -baseline-ns")
	flag.Parse()
	if *repeats < 1 {
		fatal(fmt.Errorf("repeats must be >= 1"))
	}

	modes := []Mode{
		{Name: "reference-serial", Engine: "reference", Workers: 1, Reference: true},
		{Name: "burst-serial", Engine: "burst", Workers: 1},
		{Name: "burst-parallel", Engine: "burst", Workers: *workers},
	}

	if *once != "" {
		for i := range modes {
			if modes[i].Name == *once {
				cold, _, err := timeSweep(&modes[i])
				if err != nil {
					fatal(fmt.Errorf("%s: %w", *once, err))
				}
				fmt.Println(cold.Nanoseconds())
				return
			}
		}
		fatal(fmt.Errorf("unknown mode %q", *once))
	}

	simCycles, err := totalSimCycles()
	if err != nil {
		fatal(err)
	}

	rep := Report{
		Benchmark:      "fig12-sweep",
		Kernels:        len(kernels.All()),
		Repeats:        *repeats,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		TotalSimCycles: simCycles,
	}

	// Interleave the modes round-robin so slow phases of a shared host are
	// charged to every mode equally rather than to whichever ran last. An
	// external baseline command joins the rotation for the same reason: a
	// cross-version ratio is only meaningful when both sides sample the
	// same host conditions.
	var baseRuns []int64
	for rep := 0; rep < *repeats; rep++ {
		if *baseCmd != "" {
			ns, err := runBaseline(*baseCmd)
			if err != nil {
				fatal(fmt.Errorf("baseline command: %w", err))
			}
			baseRuns = append(baseRuns, ns)
		}
		for i := range modes {
			m := &modes[i]
			cold, warm, err := timeSweep(m)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", m.Name, err))
			}
			m.ColdRun = append(m.ColdRun, cold.Nanoseconds())
			m.WarmRun = append(m.WarmRun, warm.Nanoseconds())
		}
	}
	if len(baseRuns) > 0 {
		*baseNs = min64(baseRuns)
	}
	for i := range modes {
		m := &modes[i]
		m.ColdNs = min64(m.ColdRun)
		m.WarmNs = min64(m.WarmRun)
		m.NsPerSimCycle = float64(m.WarmNs) / float64(simCycles)
	}
	rep.Modes = modes

	ref := float64(modes[0].ColdNs)
	rep.SpeedupBurstSerial = ref / float64(modes[1].ColdNs)
	rep.SpeedupBurstParallel = ref / float64(modes[2].ColdNs)
	if *baseName != "" && *baseNs > 0 {
		rep.Baseline = &Baseline{
			Name:                 *baseName,
			ColdNs:               *baseNs,
			SpeedupBurstSerial:   float64(*baseNs) / float64(modes[1].ColdNs),
			SpeedupBurstParallel: float64(*baseNs) / float64(modes[2].ColdNs),
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "fig12 sweep: reference-serial %v, burst-serial %v (%.1fx), burst-parallel %v (%.1fx)\n",
		time.Duration(modes[0].ColdNs), time.Duration(modes[1].ColdNs), rep.SpeedupBurstSerial,
		time.Duration(modes[2].ColdNs), rep.SpeedupBurstParallel)
}

// timeSweep runs the Figure 12 sweep twice on a fresh runner: cold (compile
// + simulate) and warm (artifact cache full, so simulation dominates).
func timeSweep(m *Mode) (cold, warm time.Duration, err error) {
	r := experiments.NewRunner()
	r.SetWorkers(m.Workers)
	r.SetReference(m.Reference)

	// Settle the heap so earlier modes' garbage is not charged to this one.
	runtime.GC()
	start := time.Now()
	if _, err := experiments.Fig12(r); err != nil {
		return 0, 0, err
	}
	cold = time.Since(start)

	start = time.Now()
	if _, err := experiments.Fig12(r); err != nil {
		return 0, 0, err
	}
	warm = time.Since(start)
	return cold, warm, nil
}

// totalSimCycles sums the simulated cycles of every parallel run in the
// sweep (the work a warm sweep repeats). Engine choice cannot affect it:
// both engines produce bit-identical results.
func totalSimCycles() (int64, error) {
	r := experiments.NewRunner()
	var total int64
	for _, k := range kernels.All() {
		for _, cores := range []int{2, 4} {
			_, res, _, err := r.Speedup(k, experiments.Variant{Cores: cores}, nil)
			if err != nil {
				return 0, err
			}
			total += res.Cycles
		}
	}
	return total, nil
}

// runBaseline executes the baseline command and parses the nanosecond
// count it prints.
func runBaseline(cmdline string) (int64, error) {
	parts := strings.Fields(cmdline)
	out, err := exec.Command(parts[0], parts[1:]...).Output()
	if err != nil {
		return 0, err
	}
	var ns int64
	if _, err := fmt.Sscan(string(out), &ns); err != nil {
		return 0, fmt.Errorf("parsing output %q: %w", string(out), err)
	}
	return ns, nil
}

func min64(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fgpbench:", err)
	os.Exit(1)
}
