// Command fgpbench is the host-performance regression harness: it times the
// full Figure 12 sweep (every kernel compiled and simulated at 1, 2, and 4
// cores) on every execution engine — the per-instruction reference
// scheduler, the burst engine, and the threaded-code engine — serial and
// parallel, and emits a machine-readable report.
//
// The report (BENCH_sim.json, committed at the repo root) records total
// sweep wall-clock, the compile/simulate split, host nanoseconds per
// simulated cycle, and per-mode cold and warm speedups over the
// reference-serial baseline. Regenerate it after simulator or compiler
// changes with:
//
//	go run ./cmd/fgpbench -o BENCH_sim.json
//
// A per-engine ns-per-simulated-cycle comparison table is printed to
// stderr; -gate turns the run into a mechanical regression check against a
// committed report (nonzero exit on regression), and -cpuprofile captures
// a CPU profile of the timed sweeps for flame-graph inspection of the
// remaining dispatch overhead per engine.
//
// Simulated results are bit-identical across every mode (the determinism
// tests in internal/sim enforce this); only host time may change.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"
	"time"

	"fgp/internal/core"
	"fgp/internal/experiments"
	"fgp/internal/kernels"
	"fgp/internal/kernels/tier2"
	"fgp/internal/machspace"
)

// Mode is one engine/worker configuration of the sweep.
type Mode struct {
	Name    string `json:"name"`
	Engine  string `json:"engine"`  // "reference", "burst" or "threaded"
	Workers int    `json:"workers"` // 0 = one per available CPU

	// ColdNs is the best wall-clock of the full sweep from an empty cache:
	// compilation plus simulation. WarmNs re-runs the sweep with artifacts
	// and sequential baselines cached, so it isolates simulation time.
	ColdNs  int64   `json:"cold_ns"`
	WarmNs  int64   `json:"warm_ns"`
	ColdRun []int64 `json:"cold_runs_ns"`
	WarmRun []int64 `json:"warm_runs_ns"`

	// SpeedupCold and SpeedupWarm are this mode's speedups over the
	// reference-serial baseline, computed separately from the cold and warm
	// sweeps (warm excludes compilation, so it isolates engine throughput).
	SpeedupCold float64 `json:"speedup_cold"`
	SpeedupWarm float64 `json:"speedup_warm"`

	// NsPerSimCycle is host-warm nanoseconds per simulated cycle across the
	// sweep's parallel runs (the simulation work a warm sweep repeats).
	NsPerSimCycle float64 `json:"ns_per_simulated_cycle"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Benchmark  string `json:"benchmark"`
	Kernels    int    `json:"kernels"`
	Repeats    int    `json:"repeats"`
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`

	// TotalSimCycles is the number of simulated cycles a warm sweep
	// executes (the 2- and 4-core run of every kernel); identical across
	// modes by construction.
	TotalSimCycles int64 `json:"total_simulated_cycles"`

	Modes []Mode `json:"modes"`

	// Tier2 sweeps the committed fuzzer-discovered kernels in
	// internal/kernels/tier2 — built from .fgp source through the frontend,
	// so the sweep exercises the full front door. Additive: checkGate
	// compares modes by name only, so reports without this section still
	// gate cleanly.
	Tier2 *Tier2Sweep `json:"tier2,omitempty"`

	// Search times the partitioning-as-search experiment (internal/search)
	// and records its simulated payoff over the heuristic seed. Additive,
	// like Tier2.
	Search *SearchSweep `json:"search,omitempty"`

	// Machspace times one budgeted machine-space sweep (internal/machspace)
	// over the default grid and records each kernel's frontier summary —
	// the host cost of answering "what hardware does this loop need?".
	// Additive, like Tier2.
	Machspace *MachspaceSweep `json:"machspace,omitempty"`

	// Headline ratios, all versus the reference-serial cold sweep.
	SpeedupBurstSerial      float64 `json:"speedup_burst_serial"`
	SpeedupBurstParallel    float64 `json:"speedup_burst_parallel"`
	SpeedupThreadedSerial   float64 `json:"speedup_threaded_serial"`
	SpeedupThreadedParallel float64 `json:"speedup_threaded_parallel"`

	// Baseline optionally records an externally measured cold sweep of an
	// older checkout (via -baseline/-baseline-ns), e.g. the seed
	// implementation timed with this tool's -once flag built at that
	// commit, A/B-interleaved with the current binary on the same machine.
	Baseline *Baseline `json:"baseline,omitempty"`
}

// Tier2Sweep records simulated speedups for the tier-2 source corpus.
type Tier2Sweep struct {
	Cores   int        `json:"cores"`
	Kernels []Tier2Row `json:"kernels"`
}

// Tier2Row is one tier-2 kernel's simulated result.
type Tier2Row struct {
	Name      string  `json:"name"`
	SeqCycles int64   `json:"seq_cycles"`
	Cycles    int64   `json:"cycles"`
	Speedup   float64 `json:"speedup"`
}

// SearchSweep records one partition-search run over the full catalog
// (tier-1 and tier-2) at one core count: what the search costs in host time
// and what it buys in simulated cycles versus the paper heuristic.
type SearchSweep struct {
	Cores  int   `json:"cores"`
	Budget int   `json:"budget"`
	Seed   int64 `json:"seed"`
	HostNs int64 `json:"host_ns"`

	// Totals across all kernels; SearchedCycles <= HeuristicCycles by
	// construction (the searcher is seeded with the heuristic partition).
	HeuristicCycles int64   `json:"heuristic_cycles_total"`
	SearchedCycles  int64   `json:"searched_cycles_total"`
	GainPct         float64 `json:"gain_pct"`
	Improved        int     `json:"improved_kernels"`
	Kernels         int     `json:"kernels"`
}

// MachspaceSweep records one machine-space sweep over the default grid.
type MachspaceSweep struct {
	PointsPerKernel int            `json:"points_per_kernel"`
	HostNs          int64          `json:"host_ns"`
	Kernels         []MachspaceRow `json:"kernels"`
}

// MachspaceRow is one kernel's frontier summary.
type MachspaceRow struct {
	Name         string  `json:"name"`
	Rejected     int     `json:"rejected"`
	FrontierSize int     `json:"frontier_size"`
	BestSpeedup  float64 `json:"best_speedup"`
	// Target2HWCost is the /v1/frontier inverse query: the cheapest
	// hardware cost reaching 2.0x on this kernel (0 = unreachable).
	Target2HWCost int64 `json:"target2_hw_cost"`
}

// Baseline is a cross-version comparison point.
type Baseline struct {
	Name   string `json:"name"`
	ColdNs int64  `json:"cold_ns"`

	// Speedups of the current modes' cold sweeps over this baseline.
	SpeedupBurstSerial      float64 `json:"speedup_burst_serial"`
	SpeedupBurstParallel    float64 `json:"speedup_burst_parallel"`
	SpeedupThreadedSerial   float64 `json:"speedup_threaded_serial"`
	SpeedupThreadedParallel float64 `json:"speedup_threaded_parallel"`
}

func main() {
	repeats := flag.Int("repeats", 5, "timed repetitions per mode (best is reported)")
	workers := flag.Int("workers", 0, "worker pool size for the parallel modes (0 = one per CPU)")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	once := flag.String("once", "", "run a single cold sweep in the named mode and print its nanoseconds (for cross-version A/B runs)")
	baseName := flag.String("baseline", "", "name of a baseline checkout to record in the report")
	baseNs := flag.Int64("baseline-ns", 0, "externally measured cold-sweep nanoseconds of the -baseline checkout")
	baseCmd := flag.String("baseline-cmd", "", "command printing one cold-sweep nanosecond count (e.g. an older checkout's 'fgpbench -once burst-parallel' binary); run interleaved with the modes each repeat, overriding -baseline-ns")
	msKernels := flag.String("machspace-kernels", "umt2k-4,umt2k-2,lammps-2", "comma-separated kernels for the machine-space sweep section (empty disables)")
	searchBudget := flag.Int("search-budget", 48, "candidate budget for the partition-search sweep section (0 disables)")
	searchSeed := flag.Int64("search-seed", 1, "seed for the partition-search sweep section")
	gate := flag.Float64("gate", 0, "fail (exit 1) when any mode's ns_per_simulated_cycle regresses by more than this fraction vs the -against report (0 disables)")
	against := flag.String("against", "BENCH_sim.json", "committed report the -gate check compares against")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the timed sweeps to this file")
	flag.Parse()
	if *repeats < 1 {
		fatal(fmt.Errorf("repeats must be >= 1"))
	}

	modes := []Mode{
		{Name: "reference-serial", Engine: "reference", Workers: 1},
		{Name: "burst-serial", Engine: "burst", Workers: 1},
		{Name: "threaded-serial", Engine: "threaded", Workers: 1},
		{Name: "burst-parallel", Engine: "burst", Workers: *workers},
		{Name: "threaded-parallel", Engine: "threaded", Workers: *workers},
	}

	if *once != "" {
		for i := range modes {
			if modes[i].Name == *once {
				cold, _, err := timeSweep(&modes[i])
				if err != nil {
					fatal(fmt.Errorf("%s: %w", *once, err))
				}
				fmt.Println(cold.Nanoseconds())
				return
			}
		}
		fatal(fmt.Errorf("unknown mode %q", *once))
	}

	simCycles, err := totalSimCycles()
	if err != nil {
		fatal(err)
	}

	rep := Report{
		Benchmark:      "fig12-sweep",
		Kernels:        len(kernels.All()),
		Repeats:        *repeats,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		TotalSimCycles: simCycles,
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Interleave the modes round-robin so slow phases of a shared host are
	// charged to every mode equally rather than to whichever ran last. An
	// external baseline command joins the rotation for the same reason: a
	// cross-version ratio is only meaningful when both sides sample the
	// same host conditions.
	var baseRuns []int64
	for rep := 0; rep < *repeats; rep++ {
		if *baseCmd != "" {
			ns, err := runBaseline(*baseCmd)
			if err != nil {
				fatal(fmt.Errorf("baseline command: %w", err))
			}
			baseRuns = append(baseRuns, ns)
		}
		for i := range modes {
			m := &modes[i]
			cold, warm, err := timeSweep(m)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", m.Name, err))
			}
			m.ColdRun = append(m.ColdRun, cold.Nanoseconds())
			m.WarmRun = append(m.WarmRun, warm.Nanoseconds())
		}
	}
	if len(baseRuns) > 0 {
		*baseNs = min64(baseRuns)
	}
	refCold := float64(min64(modes[0].ColdRun))
	refWarm := float64(min64(modes[0].WarmRun))
	for i := range modes {
		m := &modes[i]
		m.ColdNs = min64(m.ColdRun)
		m.WarmNs = min64(m.WarmRun)
		m.SpeedupCold = refCold / float64(m.ColdNs)
		m.SpeedupWarm = refWarm / float64(m.WarmNs)
		m.NsPerSimCycle = float64(m.WarmNs) / float64(simCycles)
	}
	rep.Modes = modes

	t2, err := tier2Sweep(4)
	if err != nil {
		fatal(fmt.Errorf("tier2 sweep: %w", err))
	}
	rep.Tier2 = t2

	if *searchBudget > 0 {
		ss, err := searchSweep(4, *searchBudget, *searchSeed)
		if err != nil {
			fatal(fmt.Errorf("search sweep: %w", err))
		}
		rep.Search = ss
	}

	if *msKernels != "" {
		ms, err := machspaceSweep(strings.Split(*msKernels, ","))
		if err != nil {
			fatal(fmt.Errorf("machspace sweep: %w", err))
		}
		rep.Machspace = ms
	}

	rep.SpeedupBurstSerial = modes[1].SpeedupCold
	rep.SpeedupThreadedSerial = modes[2].SpeedupCold
	rep.SpeedupBurstParallel = modes[3].SpeedupCold
	rep.SpeedupThreadedParallel = modes[4].SpeedupCold
	if *baseName != "" && *baseNs > 0 {
		rep.Baseline = &Baseline{
			Name:                    *baseName,
			ColdNs:                  *baseNs,
			SpeedupBurstSerial:      float64(*baseNs) / float64(modes[1].ColdNs),
			SpeedupThreadedSerial:   float64(*baseNs) / float64(modes[2].ColdNs),
			SpeedupBurstParallel:    float64(*baseNs) / float64(modes[3].ColdNs),
			SpeedupThreadedParallel: float64(*baseNs) / float64(modes[4].ColdNs),
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}

	printTable(&rep)

	if *gate > 0 {
		if err := checkGate(&rep, *against, *gate); err != nil {
			fmt.Fprintln(os.Stderr, "fgpbench: GATE FAILED:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fgpbench: gate passed (threshold %.0f%% vs %s)\n", *gate*100, *against)
	}
}

// printTable writes the per-engine comparison table to stderr.
func printTable(rep *Report) {
	tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tengine\tcold\twarm\tns/simcycle\tspeedup(cold)\tspeedup(warm)")
	for i := range rep.Modes {
		m := &rep.Modes[i]
		fmt.Fprintf(tw, "%s\t%s\t%v\t%v\t%.3f\t%.2fx\t%.2fx\n",
			m.Name, m.Engine, time.Duration(m.ColdNs), time.Duration(m.WarmNs),
			m.NsPerSimCycle, m.SpeedupCold, m.SpeedupWarm)
	}
	tw.Flush()
	if rep.Tier2 != nil {
		tw = tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "\ntier2 kernel\tseq cycles\t%d-core cycles\tspeedup\n", rep.Tier2.Cores)
		for _, r := range rep.Tier2.Kernels {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.2fx\n", r.Name, r.SeqCycles, r.Cycles, r.Speedup)
		}
		tw.Flush()
	}
	if rep.Search != nil {
		s := rep.Search
		fmt.Fprintf(os.Stderr,
			"\npartition search (%d-core, budget %d, seed %d): %d of %d kernels improved, %.2f%% total cycle gain, %v host time\n",
			s.Cores, s.Budget, s.Seed, s.Improved, s.Kernels, s.GainPct, time.Duration(s.HostNs))
	}
}

// searchSweep times one partition-search run over the full catalog (tier-1
// plus the tier-2 source corpus) at one core count and totals its simulated
// payoff against the heuristic seed.
func searchSweep(cores, budget int, seed int64) (*SearchSweep, error) {
	start := time.Now()
	rows, err := experiments.Search(experiments.NewRunner(), experiments.SearchConfig{
		Budget: budget, Seed: seed, Cores: []int{cores}, Tier2: true,
	})
	if err != nil {
		return nil, err
	}
	ss := &SearchSweep{Cores: cores, Budget: budget, Seed: seed,
		HostNs: time.Since(start).Nanoseconds(), Kernels: len(rows)}
	for _, r := range rows {
		ss.HeuristicCycles += r.HeuristicCycles
		ss.SearchedCycles += r.SearchedCycles
		if r.SearchedCycles < r.HeuristicCycles {
			ss.Improved++
		}
	}
	if ss.HeuristicCycles > 0 {
		ss.GainPct = 100 * float64(ss.HeuristicCycles-ss.SearchedCycles) / float64(ss.HeuristicCycles)
	}
	return ss, nil
}

// checkGate compares the fresh report against a committed one and errors
// when any shared mode's warm ns-per-simulated-cycle regressed by more than
// the allowed fraction. Normalizing by simulated cycles keeps the gate
// meaningful when the kernel set grows between reports.
func checkGate(cur *Report, path string, allowed float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading committed report: %w", err)
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	oldModes := map[string]*Mode{}
	for i := range old.Modes {
		oldModes[old.Modes[i].Name] = &old.Modes[i]
	}
	var regressions []string
	for i := range cur.Modes {
		m := &cur.Modes[i]
		o, ok := oldModes[m.Name]
		if !ok || o.NsPerSimCycle <= 0 {
			continue
		}
		if m.NsPerSimCycle > o.NsPerSimCycle*(1+allowed) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.3f ns/simcycle vs committed %.3f (+%.0f%%, allowed %.0f%%)",
				m.Name, m.NsPerSimCycle, o.NsPerSimCycle,
				(m.NsPerSimCycle/o.NsPerSimCycle-1)*100, allowed*100))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%s", strings.Join(regressions, "; "))
	}
	return nil
}

// tier2Sweep builds every committed tier-2 kernel from source and compares
// its simulated parallel cycles against the sequential baseline. The
// experiments runner is keyed to the built-in catalog, so this calls the
// compiler core directly.
func tier2Sweep(cores int) (*Tier2Sweep, error) {
	ks, err := tier2.All()
	if err != nil {
		return nil, err
	}
	sw := &Tier2Sweep{Cores: cores}
	for _, k := range ks {
		l, err := k.Build()
		if err != nil {
			return nil, err
		}
		seq, err := core.CompileSequential(l)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		seqRes, err := seq.RunDefault()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		art, err := core.Compile(l, core.DefaultOptions(cores))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		res, err := art.RunDefault()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		sw.Kernels = append(sw.Kernels, Tier2Row{
			Name:      k.Name,
			SeqCycles: seqRes.Cycles,
			Cycles:    res.Cycles,
			Speedup:   float64(seqRes.Cycles) / float64(res.Cycles),
		})
	}
	return sw, nil
}

// machspaceSweep runs the machine-space sweep over the default grid for
// the named kernels, timing the whole thing cold (fresh runner, so the
// host cost includes the per-(cores, queue) compiles).
func machspaceSweep(names []string) (*MachspaceSweep, error) {
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	r := experiments.NewRunner()
	start := time.Now()
	reps, err := machspace.Report(context.Background(), r, names, machspace.DefaultGrid(), nil, machspace.Options{})
	if err != nil {
		return nil, err
	}
	ms := &MachspaceSweep{HostNs: time.Since(start).Nanoseconds()}
	for _, kr := range reps {
		ms.PointsPerKernel = kr.Points
		row := MachspaceRow{
			Name:         kr.Kernel,
			Rejected:     kr.Rejected,
			FrontierSize: len(kr.Frontier),
		}
		for _, q := range kr.Queries {
			if q.Target == 2.0 && q.Found {
				row.Target2HWCost = q.Minimal.HWCost
			}
		}
		// The frontier is cost-ascending and speedup-ascending, so its last
		// entry is the surface's ceiling.
		if n := len(kr.Frontier); n > 0 {
			row.BestSpeedup = kr.Frontier[n-1].Speedup
		}
		ms.Kernels = append(ms.Kernels, row)
	}
	return ms, nil
}

// timeSweep runs the Figure 12 sweep twice on a fresh runner: cold (compile
// + simulate) and warm (artifact cache full, so simulation dominates).
func timeSweep(m *Mode) (cold, warm time.Duration, err error) {
	r := experiments.NewRunner()
	r.SetWorkers(m.Workers)
	if m.Engine != "burst" {
		r.SetEngine(m.Engine)
	}

	// Settle the heap so earlier modes' garbage is not charged to this one.
	runtime.GC()
	start := time.Now()
	if _, err := experiments.Fig12(r); err != nil {
		return 0, 0, err
	}
	cold = time.Since(start)

	start = time.Now()
	if _, err := experiments.Fig12(r); err != nil {
		return 0, 0, err
	}
	warm = time.Since(start)
	return cold, warm, nil
}

// totalSimCycles sums the simulated cycles of every parallel run in the
// sweep (the work a warm sweep repeats). Engine choice cannot affect it:
// all engines produce bit-identical results.
func totalSimCycles() (int64, error) {
	r := experiments.NewRunner()
	var total int64
	for _, k := range kernels.All() {
		for _, cores := range []int{2, 4} {
			_, res, _, err := r.Speedup(k, experiments.Variant{Cores: cores}, nil)
			if err != nil {
				return 0, err
			}
			total += res.Cycles
		}
	}
	return total, nil
}

// runBaseline executes the baseline command and parses the nanosecond
// count it prints.
func runBaseline(cmdline string) (int64, error) {
	parts := strings.Fields(cmdline)
	out, err := exec.Command(parts[0], parts[1:]...).Output()
	if err != nil {
		return 0, err
	}
	var ns int64
	if _, err := fmt.Sscan(string(out), &ns); err != nil {
		return 0, fmt.Errorf("parsing output %q: %w", string(out), err)
	}
	return ns, nil
}

func min64(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fgpbench:", err)
	os.Exit(1)
}
