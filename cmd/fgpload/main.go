// Command fgpload is the service-capacity regression harness: the fgpd
// analogue of cmd/fgpbench. It drives mixed traffic — cache hits on named
// kernels, cold compiles of unique inline IR, mid-flight client
// cancellations, and /v1/batch requests — against an in-process server (the
// default; hermetic and reproducible) or a remote daemon (-addr), and emits
// a latency-vs-offered-load curve into a machine-readable report
// (BENCH_service.json, committed at the repo root).
//
// Two load models, both reported:
//
//   - Closed loop: N workers each issue requests back to back. Throughput
//     at each concurrency level traces out the capacity curve; the peak is
//     the service's saturation throughput. Closed loops self-clock — when
//     the server slows down, offered load drops with it — so closed-loop
//     latency flatters the server.
//   - Open loop: requests arrive on a fixed schedule at a configured rate
//     whether or not earlier ones finished, like independent users. Latency
//     at a given offered rate includes queueing delay and is the number a
//     capacity plan should use; past saturation it grows without bound
//     (bounded here by admission control shedding 429s).
//
// Regenerate the committed report with:
//
//	go run ./cmd/fgpload -o BENCH_service.json
//
// -gate turns the run into a mechanical regression check against a
// committed report (nonzero exit when peak closed-loop throughput drops or
// per-point p99 regresses past the threshold), mirroring fgpbench -gate.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"fgp/internal/ir"
	"fgp/internal/service"
)

// Point is one measured (load, latency) sample of the curve.
type Point struct {
	Mode        string  `json:"mode"`                  // "closed" or "open"
	Concurrency int     `json:"concurrency,omitempty"` // closed loop
	OfferedRPS  float64 `json:"offered_rps,omitempty"` // open loop
	AchievedRPS float64 `json:"achieved_rps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	Requests    int64   `json:"requests"`
	// Dropped counts open-loop arrivals shed client-side because the
	// outstanding-request cap was hit (the open loop's safety valve once
	// the server is past saturation).
	Dropped int64 `json:"dropped,omitempty"`
	// Status maps HTTP status ("200", "429", "499", ...) to a count; batch
	// item outcomes fold into the same keys, client-side aborts are "0".
	Status map[string]int64 `json:"status"`
	// CacheHitRate is the server's in-memory compile-cache hit rate over
	// this point's interval (from /metrics deltas).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Report is the BENCH_service.json schema.
type Report struct {
	Benchmark  string `json:"benchmark"`
	Target     string `json:"target"` // "in-process" or the -addr value
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	DurationMs int64  `json:"duration_ms_per_point"`

	// Mix is the offered traffic composition (fractions summing to 1).
	Mix map[string]float64 `json:"mix"`

	Closed []Point `json:"closed"`
	Open   []Point `json:"open"`

	// Headlines: saturation throughput of the closed loop and the p99
	// there, plus the open-loop p99 at roughly half of saturation (the
	// operating point a capacity plan would pick).
	PeakClosedRPS  float64 `json:"peak_closed_rps"`
	P99AtPeakMs    float64 `json:"p99_at_peak_ms"`
	OpenP99HalfMs  float64 `json:"open_p99_at_half_peak_ms"`
	OpenHalfPeakRPS float64 `json:"open_half_peak_rps"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fgpload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "target an already-running fgpd (host:port); empty = in-process server")
	workers := fs.Int("workers", 0, "in-process server worker slots (0 = one per CPU)")
	queueDepth := fs.Int("queue-depth", 256, "in-process server queue depth before 429")
	storeDir := fs.String("store-dir", "", "in-process server artifact store directory (empty = memory-only)")
	duration := fs.Duration("duration", 2*time.Second, "measurement window per curve point")
	warmup := fs.Duration("warmup", 500*time.Millisecond, "cache-priming mixed load before the first point")
	closedList := fs.String("closed", "1,2,4,8,16,32", "closed-loop concurrency levels")
	openList := fs.String("open", "", "open-loop offered rates in req/s (empty = 25%,50%,75%,100% of measured peak)")
	mixSpec := fs.String("mix", "hit=0.6,miss=0.15,cancel=0.1,batch=0.15", "traffic class weights")
	seed := fs.Int64("seed", 1, "RNG seed for class picks and unique-kernel generation")
	out := fs.String("o", "", "write the JSON report to this file (default stdout)")
	gate := fs.Float64("gate", 0, "fail (exit 1) when peak throughput or per-point p99 regresses by more than this fraction vs the -against report (0 disables)")
	against := fs.String("against", "BENCH_service.json", "committed report the -gate check compares against")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fgpload:", err)
		return 1
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		return fail(err)
	}
	levels, err := parseInts(*closedList)
	if err != nil {
		return fail(fmt.Errorf("-closed: %w", err))
	}

	target := *addr
	rep := Report{
		Benchmark:  "fgpd-capacity",
		Target:     "in-process",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Workers:    *workers,
		QueueDepth: *queueDepth,
		DurationMs: duration.Milliseconds(),
		Mix:        mix,
	}
	if rep.Workers == 0 {
		rep.Workers = runtime.GOMAXPROCS(0)
	}

	// Resolve the target: remote daemon or a hermetic in-process server.
	if target == "" {
		svc, err := service.New(service.Config{
			Workers:    *workers,
			QueueDepth: *queueDepth,
			StoreDir:   *storeDir,
		})
		if err != nil {
			return fail(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		hs := &http.Server{Handler: svc.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		target = ln.Addr().String()
	} else {
		rep.Target = target
	}

	g := &generator{
		base:   "http://" + target,
		client: newClient(),
		mix:    mix,
		seed:   *seed,
	}
	if err := g.prime(*warmup); err != nil {
		return fail(fmt.Errorf("warmup: %w", err))
	}

	// Closed loop: concurrency sweep.
	for _, c := range levels {
		p := g.closedPoint(c, *duration)
		rep.Closed = append(rep.Closed, p)
		fmt.Fprintf(stderr, "fgpload: closed c=%-3d %8.1f req/s  p50 %6.2fms  p99 %7.2fms  p999 %7.2fms\n",
			c, p.AchievedRPS, p.P50Ms, p.P99Ms, p.P999Ms)
	}
	for _, p := range rep.Closed {
		if p.AchievedRPS > rep.PeakClosedRPS {
			rep.PeakClosedRPS = p.AchievedRPS
			rep.P99AtPeakMs = p.P99Ms
		}
	}

	// Open loop: explicit rates, or fractions of the measured peak.
	var rates []float64
	if *openList != "" {
		ints, err := parseInts(*openList)
		if err != nil {
			return fail(fmt.Errorf("-open: %w", err))
		}
		for _, r := range ints {
			rates = append(rates, float64(r))
		}
	} else {
		for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
			r := rep.PeakClosedRPS * frac
			if r < 5 {
				r = 5
			}
			rates = append(rates, r)
		}
	}
	for _, r := range rates {
		p := g.openPoint(r, *duration)
		rep.Open = append(rep.Open, p)
		fmt.Fprintf(stderr, "fgpload: open  r=%-7.1f %8.1f req/s  p50 %6.2fms  p99 %7.2fms  p999 %7.2fms  dropped %d\n",
			p.OfferedRPS, p.AchievedRPS, p.P50Ms, p.P99Ms, p.P999Ms, p.Dropped)
	}
	// The half-peak operating point: the open point whose offered rate is
	// closest to 50% of peak closed throughput.
	if len(rep.Open) > 0 && rep.PeakClosedRPS > 0 {
		best := rep.Open[0]
		for _, p := range rep.Open[1:] {
			if abs(p.OfferedRPS-rep.PeakClosedRPS/2) < abs(best.OfferedRPS-rep.PeakClosedRPS/2) {
				best = p
			}
		}
		rep.OpenP99HalfMs = best.P99Ms
		rep.OpenHalfPeakRPS = best.OfferedRPS
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fail(err)
	}
	printTable(stderr, &rep)

	if *gate > 0 {
		if err := checkGate(&rep, *against, *gate); err != nil {
			fmt.Fprintln(stderr, "fgpload: GATE FAILED:", err)
			return 1
		}
		fmt.Fprintf(stderr, "fgpload: gate passed (threshold %.0f%% vs %s)\n", *gate*100, *against)
	}
	return 0
}

// newClient builds an HTTP client that can hold a high-concurrency sweep's
// connections open (the default transport keeps only 2 idle per host, which
// turns a load test into a connection-churn test).
func newClient() *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
	}
	return &http.Client{Transport: tr}
}

// generator issues one mixed-traffic request stream.
type generator struct {
	base   string
	client *http.Client
	mix    map[string]float64
	seed   int64

	uniq atomic.Int64 // distinct content addresses for the miss class
}

// named kernels the hit class rotates over; primed during warmup.
var hitKernels = []string{"sphot-1", "irs-1", "umt2k-1"}

// sample is one completed request.
type sample struct {
	status  int // HTTP status, or 0 for a client-side abort
	latency time.Duration
	measure bool // false for cancel-class requests (their latency is the cancel timer)
}

// prime fills the caches the hit and cancel classes rely on, then runs a
// short mixed load so the first measured point does not pay one-time costs.
func (g *generator) prime(warmup time.Duration) error {
	for _, k := range hitKernels {
		if st, err := g.postRun(context.Background(), service.RunRequest{Kernel: k, Cores: 2}); err != nil || st != 200 {
			return fmt.Errorf("priming %s: status %d, err %v", k, st, err)
		}
	}
	// Compile (and fully run once) the long kernel the cancel class aborts.
	if st, err := g.postRun(context.Background(), service.RunRequest{IR: cancelKernelWire(), Cores: 2}); err != nil || st != 200 {
		return fmt.Errorf("priming cancel kernel: status %d, err %v", st, err)
	}
	if warmup > 0 {
		g.closedPoint(4, warmup)
	}
	return nil
}

// closedPoint runs c workers back to back for d and aggregates.
func (g *generator) closedPoint(c int, d time.Duration) Point {
	before := g.metrics()
	var (
		mu      sync.Mutex
		samples []sample
	)
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g.seed + int64(w)*7919))
			var local []sample
			for time.Now().Before(deadline) {
				local = append(local, g.issue(rng))
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	p := aggregate(samples, d)
	p.Mode, p.Concurrency = "closed", c
	p.CacheHitRate = hitRateDelta(before, g.metrics())
	return p
}

// openPoint issues arrivals on a fixed schedule at rate req/s for d,
// unbounded concurrency up to a client-side outstanding cap.
func (g *generator) openPoint(rate float64, d time.Duration) Point {
	const maxOutstanding = 2048
	before := g.metrics()
	var (
		mu          sync.Mutex
		samples     []sample
		outstanding atomic.Int64
		dropped     atomic.Int64
		wg          sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	rng := rand.New(rand.NewSource(g.seed * 31))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(d)
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		if outstanding.Load() >= maxOutstanding {
			dropped.Add(1)
			continue
		}
		outstanding.Add(1)
		seed := rng.Int63()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer outstanding.Add(-1)
			s := g.issue(rand.New(rand.NewSource(seed)))
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		}()
	}
	wg.Wait()
	p := aggregate(samples, d)
	p.Mode, p.OfferedRPS, p.Dropped = "open", rate, dropped.Load()
	p.CacheHitRate = hitRateDelta(before, g.metrics())
	return p
}

// issue sends one request of a mix-weighted random class.
func (g *generator) issue(rng *rand.Rand) sample {
	x := rng.Float64()
	for _, class := range []string{"hit", "miss", "cancel", "batch"} {
		x -= g.mix[class]
		if x >= 0 {
			continue
		}
		switch class {
		case "hit":
			return g.timed(func(ctx context.Context) (int, error) {
				return g.postRun(ctx, service.RunRequest{Kernel: hitKernels[rng.Intn(len(hitKernels))], Cores: 2})
			}, true)
		case "miss":
			wire := uniqueKernelWire(g.seed*1_000_003 + g.uniq.Add(1))
			return g.timed(func(ctx context.Context) (int, error) {
				return g.postRun(ctx, service.RunRequest{IR: wire, Cores: 2})
			}, true)
		case "cancel":
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+rng.Intn(4))*time.Millisecond)
			st, err := g.postRun(ctx, service.RunRequest{IR: cancelKernelWire(), Cores: 2})
			cancel()
			if err != nil {
				st = 0 // aborted client-side, the expected outcome
			}
			return sample{status: st, measure: false}
		case "batch":
			return g.timedBatch(rng)
		}
	}
	// Weights that do not quite sum to 1 land here: default to a hit.
	return g.timed(func(ctx context.Context) (int, error) {
		return g.postRun(ctx, service.RunRequest{Kernel: hitKernels[0], Cores: 2})
	}, true)
}

func (g *generator) timed(f func(ctx context.Context) (int, error), measure bool) sample {
	start := time.Now()
	st, err := f(context.Background())
	if err != nil {
		st = 0
	}
	return sample{status: st, latency: time.Since(start), measure: measure}
}

// timedBatch posts a 4-item batch (3 hits + 1 unique miss) and folds the
// per-item statuses into the sample stream via its own status field: the
// batch's own latency is the joined stream, item outcomes are parsed from
// the NDJSON lines and returned through itemStatuses.
func (g *generator) timedBatch(rng *rand.Rand) sample {
	items := []service.RunRequest{
		{Kernel: hitKernels[rng.Intn(len(hitKernels))], Cores: 2},
		{Kernel: hitKernels[rng.Intn(len(hitKernels))], Cores: 2},
		{Kernel: hitKernels[rng.Intn(len(hitKernels))], Cores: 4},
		{IR: uniqueKernelWire(g.seed*2_000_003 + g.uniq.Add(1)), Cores: 2},
	}
	body, _ := json.Marshal(service.BatchRequest{Items: items})
	start := time.Now()
	resp, err := g.client.Post(g.base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{status: 0, latency: time.Since(start), measure: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return sample{status: resp.StatusCode, latency: time.Since(start), measure: true}
	}
	// Drain the stream; require the trailer so a truncated batch counts as
	// a failure, not a fast success.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	done := false
	for sc.Scan() {
		var trailer struct {
			Done bool `json:"done"`
		}
		if json.Unmarshal(sc.Bytes(), &trailer) == nil && trailer.Done {
			done = true
		}
	}
	st := resp.StatusCode
	if !done {
		st = 0
	}
	return sample{status: st, latency: time.Since(start), measure: true}
}

func (g *generator) postRun(ctx context.Context, req service.RunRequest) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, "POST", g.base+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(hreq)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// metrics fetches the server's /metrics document (zero value on error —
// the hit-rate delta then reports 0, never fails the run).
func (g *generator) metrics() service.Metrics {
	var m service.Metrics
	resp, err := g.client.Get(g.base + "/metrics")
	if err != nil {
		return m
	}
	defer resp.Body.Close()
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return m
}

func hitRateDelta(before, after service.Metrics) float64 {
	hits := after.Cache.Hits - before.Cache.Hits
	total := hits + after.Cache.Misses - before.Cache.Misses
	if total <= 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// aggregate folds samples into a curve point.
func aggregate(samples []sample, d time.Duration) Point {
	p := Point{Status: map[string]int64{}}
	var lats []time.Duration
	for _, s := range samples {
		p.Requests++
		p.Status[strconv.Itoa(s.status)]++
		if s.measure {
			lats = append(lats, s.latency)
		}
	}
	p.AchievedRPS = float64(p.Requests) / d.Seconds()
	if len(lats) == 0 {
		return p
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(f float64) float64 {
		i := int(f*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return float64(lats[i]) / float64(time.Millisecond)
	}
	p.P50Ms, p.P99Ms, p.P999Ms = q(0.50), q(0.99), q(0.999)
	return p
}

// checkGate compares a fresh report against the committed one: peak
// closed-loop throughput must not drop, and no matching curve point's p99
// may grow, past the allowed fraction. A 5ms absolute floor on the latency
// comparison keeps sub-millisecond points from flaking the gate on noise.
func checkGate(cur *Report, path string, allowed float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading committed report: %w", err)
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	var regressions []string
	if old.PeakClosedRPS > 0 && cur.PeakClosedRPS < old.PeakClosedRPS*(1-allowed) {
		regressions = append(regressions, fmt.Sprintf(
			"peak closed-loop throughput %.1f req/s vs committed %.1f (-%.0f%%, allowed %.0f%%)",
			cur.PeakClosedRPS, old.PeakClosedRPS,
			(1-cur.PeakClosedRPS/old.PeakClosedRPS)*100, allowed*100))
	}
	oldClosed := map[int]Point{}
	for _, p := range old.Closed {
		oldClosed[p.Concurrency] = p
	}
	const floorMs = 5.0
	for _, p := range cur.Closed {
		o, ok := oldClosed[p.Concurrency]
		if !ok || o.P99Ms <= 0 {
			continue
		}
		if p.P99Ms > o.P99Ms*(1+allowed)+floorMs {
			regressions = append(regressions, fmt.Sprintf(
				"closed c=%d: p99 %.2fms vs committed %.2fms (allowed +%.0f%% + %.0fms)",
				p.Concurrency, p.P99Ms, o.P99Ms, allowed*100, floorMs))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%s", strings.Join(regressions, "; "))
	}
	return nil
}

func printTable(w io.Writer, rep *Report) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tload\tachieved req/s\tp50\tp99\tp999\thit rate")
	for _, p := range append(append([]Point{}, rep.Closed...), rep.Open...) {
		load := fmt.Sprintf("c=%d", p.Concurrency)
		if p.Mode == "open" {
			load = fmt.Sprintf("r=%.0f/s", p.OfferedRPS)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.2fms\t%.2fms\t%.2fms\t%.2f\n",
			p.Mode, load, p.AchievedRPS, p.P50Ms, p.P99Ms, p.P999Ms, p.CacheHitRate)
	}
	tw.Flush()
	fmt.Fprintf(w, "peak closed-loop: %.1f req/s (p99 %.2fms); open-loop p99 at %.0f req/s: %.2fms\n",
		rep.PeakClosedRPS, rep.P99AtPeakMs, rep.OpenHalfPeakRPS, rep.OpenP99HalfMs)
}

// uniqueKernelWire builds a small kernel whose content address depends on
// seed (the array data feeds the canonical encoding), so every call with a
// fresh seed is a guaranteed compile-cache miss.
func uniqueKernelWire(seed int64) json.RawMessage {
	return buildKernelWire(seed, 64)
}

// cancelKernelWire is the long-running kernel the cancel class aborts
// mid-simulation: one fixed content address, compiled once during warmup.
func cancelKernelWire() json.RawMessage {
	return buildKernelWire(-1, 1_000_000)
}

func buildKernelWire(seed, trips int64) json.RawMessage {
	b := ir.NewBuilder("load", "i", 0, trips, 1)
	n := trips
	if n > 64 {
		n = 64
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(seed+int64(i))*0.5 + 1
	}
	b.ArrayF("a", data)
	b.ArrayF("o", make([]float64, n))
	s := b.ScalarF("scale", float64(seed%7)+0.5)
	idx := b.Def("j", ir.RemE(b.Idx(), ir.I(n)))
	x := b.Def("x", ir.MulE(ir.LDF("a", idx), s))
	b.Def("y", ir.AddE(ir.SqrtE(ir.AbsE(x)), ir.F(1)))
	b.StoreF("o", idx, b.T("y"))
	wire, err := ir.MarshalLoop(b.MustBuild())
	if err != nil {
		panic(err) // builder output always encodes
	}
	return wire
}

func parseMix(spec string) (map[string]float64, error) {
	mix := map[string]float64{}
	total := 0.0
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not class=weight", part)
		}
		switch k {
		case "hit", "miss", "cancel", "batch":
		default:
			return nil, fmt.Errorf("unknown traffic class %q", k)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("mix weight %q: %v", v, err)
		}
		mix[k] = f
		total += f
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix weights sum to %v; need > 0", total)
	}
	for k := range mix {
		mix[k] /= total
	}
	return mix, nil
}

func parseInts(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
