package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeReport(t *testing.T, rep Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckGate(t *testing.T) {
	committed := Report{
		PeakClosedRPS: 1000,
		Closed: []Point{
			{Mode: "closed", Concurrency: 4, P99Ms: 20},
			{Mode: "closed", Concurrency: 16, P99Ms: 40},
		},
	}
	path := writeReport(t, committed)

	t.Run("within threshold passes", func(t *testing.T) {
		cur := Report{
			PeakClosedRPS: 950, // -5%, allowed 25%
			Closed: []Point{
				{Mode: "closed", Concurrency: 4, P99Ms: 24},  // +20% < 25% + floor
				{Mode: "closed", Concurrency: 16, P99Ms: 40}, // flat
				{Mode: "closed", Concurrency: 64, P99Ms: 99}, // no committed twin: ignored
			},
		}
		if err := checkGate(&cur, path, 0.25); err != nil {
			t.Fatalf("gate failed on an in-threshold run: %v", err)
		}
	})
	t.Run("throughput collapse fails", func(t *testing.T) {
		cur := Report{PeakClosedRPS: 500}
		err := checkGate(&cur, path, 0.25)
		if err == nil || !strings.Contains(err.Error(), "peak closed-loop throughput") {
			t.Fatalf("err = %v, want peak-throughput regression", err)
		}
	})
	t.Run("p99 blowup fails", func(t *testing.T) {
		cur := Report{
			PeakClosedRPS: 1000,
			Closed:        []Point{{Mode: "closed", Concurrency: 16, P99Ms: 200}},
		}
		err := checkGate(&cur, path, 0.25)
		if err == nil || !strings.Contains(err.Error(), "c=16") {
			t.Fatalf("err = %v, want c=16 p99 regression", err)
		}
	})
	t.Run("absolute floor absorbs microsecond noise", func(t *testing.T) {
		tiny := writeReport(t, Report{
			PeakClosedRPS: 1000,
			Closed:        []Point{{Mode: "closed", Concurrency: 1, P99Ms: 0.2}},
		})
		cur := Report{
			PeakClosedRPS: 1000,
			// 10x in relative terms, but under the 5ms absolute floor.
			Closed: []Point{{Mode: "closed", Concurrency: 1, P99Ms: 2.0}},
		}
		if err := checkGate(&cur, tiny, 0.25); err != nil {
			t.Fatalf("gate flaked on sub-floor noise: %v", err)
		}
	})
	t.Run("missing committed report fails loudly", func(t *testing.T) {
		cur := Report{PeakClosedRPS: 1000}
		if err := checkGate(&cur, filepath.Join(t.TempDir(), "nope.json"), 0.25); err == nil {
			t.Fatal("gate passed with no committed report to compare against")
		}
	})
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("hit=3,miss=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix["hit"] != 0.75 || mix["miss"] != 0.25 {
		t.Errorf("weights not normalized: %v", mix)
	}
	for _, bad := range []string{"", "hit", "hit=x", "warp=1", "hit=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestUniqueKernelWireIsUnique(t *testing.T) {
	a, b := uniqueKernelWire(1), uniqueKernelWire(2)
	if string(a) == string(b) {
		t.Fatal("different seeds produced identical wire encodings (cache misses would be hits)")
	}
	if string(cancelKernelWire()) != string(cancelKernelWire()) {
		t.Fatal("cancel kernel wire is not stable (each cancel would cost a compile)")
	}
}

func TestAggregateQuantiles(t *testing.T) {
	var samples []sample
	for i := 1; i <= 1000; i++ {
		samples = append(samples, sample{status: 200, latency: time.Duration(i) * time.Millisecond, measure: true})
	}
	samples = append(samples, sample{status: 0, latency: time.Hour, measure: false}) // cancel-class: excluded
	p := aggregate(samples, 10*time.Second)
	if p.Requests != 1001 || p.Status["200"] != 1000 || p.Status["0"] != 1 {
		t.Errorf("counts wrong: %+v", p)
	}
	if p.P50Ms != 500 || p.P99Ms != 990 || p.P999Ms != 999 {
		t.Errorf("quantiles p50=%v p99=%v p999=%v, want 500/990/999", p.P50Ms, p.P99Ms, p.P999Ms)
	}
}
