// Command fgpexp regenerates the paper's evaluation: every table and
// figure of Section V, plus the ablations discussed in Section III-B and
// two extension sweeps.
//
// Usage:
//
//	fgpexp                     # run everything
//	fgpexp -exp fig12          # one experiment
//	fgpexp -exp fig13 -lat 5,20,50,100
//
// Experiments: table1, fig12, table2, table3, fig13, fig14, throughput,
// multipair, schedule, queuelen, search, attribution, machspace, all. The
// search experiment compiles every tier-1 and tier-2 kernel with the
// simulator-guided partition search (-search-budget candidates per kernel,
// seeded by -search-seed) and reports heuristic vs searched cycles.
//
// The machspace experiment sweeps each -ms-kernels kernel over the default
// machine-space grid (queue capacity × transfer latency × enqueue cost at
// 4 cores) and prints the latency-degradation row, the queue-saturation
// row, the Pareto frontier of speedup vs hardware cost, and the
// -ms-targets inverse queries ("cheapest machine reaching 2x").
//
// The attribution experiment records the full observability event stream
// of one kernel (-trace-kernel) across core counts (-trace-cores) and
// prints the per-core stall-attribution report: cycles decomposed by cause
// (queue waits, L1 misses, memory-port serialization), queue occupancy
// high-water marks, and the load-imbalance index. -trace-out additionally
// writes the highest-core-count recording to a file in -trace-format
// (text, perfetto, or report).
//
// Host-performance knobs: -workers bounds the sweep's worker pool,
// -reference forces the retained per-instruction simulator engine
// (bit-identical results, slower), and -cpuprofile/-memprofile write pprof
// profiles of the run for go tool pprof.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"fgp/internal/experiments"
	"fgp/internal/machspace"
	"fgp/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, fig12, table2, table3, fig13, fig14, throughput, multipair, schedule, normalize, simd, queuelen, search, attribution, machspace, all)")
	lats := flag.String("lat", "5,20,50,100", "comma-separated transfer latencies for fig13")
	qlens := flag.String("qlen", "2,4,8,20,64", "comma-separated queue lengths for queuelen")
	traceKernel := flag.String("trace-kernel", "sphot-1", "kernel for the attribution experiment")
	traceCores := flag.String("trace-cores", "1,2,4", "comma-separated core counts for the attribution experiment")
	traceOut := flag.String("trace-out", "", "write the attribution recording (highest core count) to this file")
	traceFormat := flag.String("trace-format", "perfetto", "format for -trace-out: "+obs.TraceFormats)
	msKernels := flag.String("ms-kernels", "umt2k-4,umt2k-2,lammps-2", "comma-separated kernels for the machspace sweep")
	msTargets := flag.String("ms-targets", "1.5,2,3", "comma-separated inverse-query speedup targets for machspace")
	searchBudget := flag.Int("search-budget", 48, "per-kernel candidate budget for the search experiment")
	searchSeed := flag.Int64("search-seed", 1, "random seed for the search experiment")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	workers := flag.Int("workers", 0, "worker pool size for experiment sweeps (0 = one per CPU, 1 = serial)")
	reference := flag.Bool("reference", false, "simulate on the reference per-instruction engine instead of the burst engine")
	engine := flag.String("engine", "", "simulation engine for every run: burst (default), reference, or threaded")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	latencies, err := parseInt64s(*lats)
	if err != nil {
		fatal(err)
	}
	lengths, err := parseInts(*qlens)
	if err != nil {
		fatal(err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // get up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	r := experiments.NewRunner()
	r.SetWorkers(*workers)
	r.SetReference(*reference)
	if *engine != "" {
		r.SetEngine(*engine)
	}
	jsonOut := map[string]any{}
	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := f()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if !*asJSON {
			fmt.Println(out)
		}
	}
	collect := func(name string, rows any) {
		if *asJSON {
			jsonOut[name] = rows
		}
	}
	_ = collect

	run("table1", func() (string, error) {
		rows := experiments.Table1()
		collect("table1", rows)
		return experiments.FormatTable1(rows), nil
	})
	run("fig12", func() (string, error) {
		rows, err := experiments.Fig12(r)
		if err != nil {
			return "", err
		}
		collect("fig12", rows)
		return experiments.FormatFig12(rows), nil
	})
	run("table2", func() (string, error) {
		rows, err := experiments.Table2(r)
		if err != nil {
			return "", err
		}
		collect("table2", rows)
		return experiments.FormatTable2(rows), nil
	})
	run("table3", func() (string, error) {
		rows, err := experiments.Table3(r)
		if err != nil {
			return "", err
		}
		collect("table3", rows)
		return experiments.FormatTable3(rows), nil
	})
	run("fig13", func() (string, error) {
		rows, err := experiments.Fig13(r, latencies)
		if err != nil {
			return "", err
		}
		collect("fig13", rows)
		return experiments.FormatFig13(rows, latencies), nil
	})
	run("fig14", func() (string, error) {
		rows, err := experiments.Fig14(r)
		if err != nil {
			return "", err
		}
		collect("fig14", rows)
		return experiments.FormatFig14(rows), nil
	})
	run("throughput", func() (string, error) {
		rows, err := experiments.Throughput(r)
		if err != nil {
			return "", err
		}
		collect("throughput", rows)
		return experiments.FormatThroughput(rows), nil
	})
	run("multipair", func() (string, error) {
		rows, err := experiments.MultiPair(r)
		if err != nil {
			return "", err
		}
		collect("multipair", rows)
		return experiments.FormatMultiPair(rows), nil
	})
	run("schedule", func() (string, error) {
		rows, err := experiments.Schedule(r)
		if err != nil {
			return "", err
		}
		collect("schedule", rows)
		return experiments.FormatSchedule(rows), nil
	})
	run("normalize", func() (string, error) {
		rows, err := experiments.Normalize(r)
		if err != nil {
			return "", err
		}
		collect("normalize", rows)
		return experiments.FormatNormalize(rows), nil
	})
	run("simd", func() (string, error) {
		rows, err := experiments.SIMD()
		if err != nil {
			return "", err
		}
		collect("simd", rows)
		return experiments.FormatSIMD(rows), nil
	})
	run("queuelen", func() (string, error) {
		rows, err := experiments.QueueLen(r, lengths)
		if err != nil {
			return "", err
		}
		collect("queuelen", rows)
		return experiments.FormatQueueLen(rows, lengths), nil
	})
	run("search", func() (string, error) {
		rows, err := experiments.Search(r, experiments.SearchConfig{
			Budget: *searchBudget,
			Seed:   *searchSeed,
			Tier2:  true,
		})
		if err != nil {
			return "", err
		}
		collect("search", rows)
		return experiments.FormatSearch(rows), nil
	})
	run("machspace", func() (string, error) {
		names := strings.Split(*msKernels, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		targets, err := parseFloats(*msTargets)
		if err != nil {
			return "", err
		}
		reps, err := machspace.Report(context.Background(), r, names, machspace.DefaultGrid(), targets, machspace.Options{
			Workers:      *workers,
			Partitioner:  "",
			SearchSeed:   *searchSeed,
			SearchBudget: *searchBudget,
			Engine:       *engine,
		})
		if err != nil {
			return "", err
		}
		collect("machspace", reps)
		return machspace.FormatReport(reps), nil
	})
	run("attribution", func() (string, error) {
		cc, err := parseInts(*traceCores)
		if err != nil {
			return "", err
		}
		rows, err := experiments.Attribution(r, *traceKernel, cc)
		if err != nil {
			return "", err
		}
		collect("attribution", rows)
		out := experiments.FormatAttribution(rows)
		if *traceOut != "" && len(rows) > 0 {
			last := &rows[len(rows)-1]
			data, err := obs.RenderTrace(*traceFormat, last.Meta, last.Events)
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
				return "", err
			}
			out += fmt.Sprintf("trace written: %s (%s, %d cores, %d events)\n",
				*traceOut, *traceFormat, last.Cores, len(last.Events))
		}
		return out, nil
	})

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fatal(err)
		}
	}
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	v64, err := parseInt64s(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(v64))
	for i, v := range v64 {
		out[i] = int(v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fgpexp:", err)
	os.Exit(1)
}
