package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/... -update` to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended)\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestCompileReportGolden pins the compiler report for one kernel per
// application suite at the paper's 4-core configuration.
func TestCompileReportGolden(t *testing.T) {
	for _, kernel := range []string{"lammps-1", "irs-1", "umt2k-1", "sphot-1"} {
		kernel := kernel
		t.Run(kernel, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{"-kernel", kernel, "-cores", "4", "-dump", "report"}, &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
			}
			checkGolden(t, "golden_report_"+kernel+".txt", out.Bytes())
		})
	}
}

// TestListGolden pins the -list catalog (names, suites, paper numbers).
func TestListGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	checkGolden(t, "golden_list.txt", out.Bytes())
}

func TestBadInvocations(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "missing -kernel") {
		t.Errorf("stderr %q does not mention the missing flag", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-kernel", "nope-1"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// TestDumpStagesRun sanity-checks every dump stage produces output (content
// is pinned elsewhere; this guards the flag plumbing).
func TestDumpStagesRun(t *testing.T) {
	for _, stage := range []string{"ir", "tac", "fibers", "parts", "asm"} {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{"-kernel", "sphot-1", "-cores", "2", "-dump", stage}, &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
			}
			if out.Len() == 0 {
				t.Errorf("dump %q produced no output", stage)
			}
		})
	}
}
