package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fgp/internal/ir"
	"fgp/internal/kernels"
)

// TestEmitSourceGolden pins the decompiler output for one kernel per
// suite, then closes the loop: recompiling each emitted .fgp must produce
// the exact compiler report the catalog kernel produces (the report golden
// pinned by TestCompileReportGolden).
func TestEmitSourceGolden(t *testing.T) {
	for _, kernel := range []string{"lammps-1", "irs-1", "umt2k-1", "sphot-1"} {
		t.Run(kernel, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{"-kernel", kernel, "-emit", "source"}, &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
			}
			checkGolden(t, "golden_emit_"+kernel+".fgp", out.Bytes())

			path := filepath.Join(t.TempDir(), kernel+".fgp")
			if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			var rep, errb2 bytes.Buffer
			if code := run([]string{"-source", path, "-cores", "4", "-dump", "report"}, &rep, &errb2); code != 0 {
				t.Fatalf("recompile exit %d, stderr:\n%s", code, errb2.String())
			}
			checkGolden(t, "golden_report_"+kernel+".txt", rep.Bytes())
		})
	}
}

// TestSourceDiagnostics: a broken .fgp file exits 1 with path:line:col
// diagnostics and the offending line on stderr.
func TestSourceDiagnostics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.fgp")
	src := "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = missing;\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-source", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, path+":3:9:") {
		t.Errorf("stderr lacks a path:line:col position:\n%s", msg)
	}
	if !strings.Contains(msg, "a[i] = missing;") {
		t.Errorf("stderr lacks the source snippet:\n%s", msg)
	}
}

// TestIRFileMatchesKernel: -ir on a wire-encoded loop file reports
// identically to the -kernel form it was marshaled from.
func TestIRFileMatchesKernel(t *testing.T) {
	k, err := kernels.ByName("sphot-1")
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ir.MarshalLoop(k.Build())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sphot-1.json")
	if err := os.WriteFile(path, wire, 0o644); err != nil {
		t.Fatal(err)
	}
	var fromIR, fromName, errb bytes.Buffer
	if code := run([]string{"-ir", path, "-cores", "4", "-dump", "report"}, &fromIR, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if code := run([]string{"-kernel", "sphot-1", "-cores", "4", "-dump", "report"}, &fromName, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if fromIR.String() != fromName.String() {
		t.Errorf("-ir and -kernel reports differ:\n--- ir ---\n%s--- kernel ---\n%s", fromIR.String(), fromName.String())
	}
}

func TestExclusiveSelection(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-kernel", "irs-1", "-source", "x.fgp"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "exactly one") {
		t.Errorf("stderr %q does not explain the conflict", errb.String())
	}

	errb.Reset()
	if code := run([]string{"-kernel", "irs-1", "-emit", "json"}, &out, &errb); code != 1 {
		t.Fatalf("unknown emit: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "-emit") {
		t.Errorf("stderr %q does not mention -emit", errb.String())
	}
}
