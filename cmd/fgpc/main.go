// Command fgpc is the compiler inspection tool: it compiles one of the 18
// evaluation kernels and dumps any stage of the pipeline — the IR, the
// lowered TAC with fiber assignments, the partition map, the compiler
// report, or the generated per-core machine code.
//
// Usage:
//
//	fgpc -kernel lammps-1 -cores 4 -dump ir,tac,parts,report,asm
//	fgpc -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fgp/internal/core"
	"fgp/internal/ir"
	"fgp/internal/kernels"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can pin the
// output of whole invocations against golden files.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fgpc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kernel := fs.String("kernel", "", "kernel name (see -list)")
	cores := fs.Int("cores", 4, "number of cores to partition for")
	dump := fs.String("dump", "report", "comma-separated dumps: ir, tac, fibers, parts, report, asm")
	spec := fs.Bool("speculate", false, "enable control-flow speculation")
	throughput := fs.Bool("throughput", false, "enable the DAG merge heuristic")
	schedule := fs.Bool("schedule", false, "enable within-region scheduling")
	list := fs.Bool("list", false, "list available kernels")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fgpc:", err)
		return 1
	}

	if *list {
		for _, k := range kernels.All() {
			fmt.Fprintf(stdout, "%-10s %-8s %5.1f%% of app time; paper 4-core speedup %.2f\n",
				k.Name, k.App, k.PctTime, k.PaperSpeedup)
		}
		return 0
	}
	if *kernel == "" {
		return fail(fmt.Errorf("missing -kernel (use -list to see options)"))
	}
	k, err := kernels.ByName(*kernel)
	if err != nil {
		return fail(err)
	}
	opt := core.DefaultOptions(*cores)
	opt.Speculate = *spec
	opt.Throughput = *throughput
	opt.Schedule = *schedule
	a, err := core.Compile(k.Build(), opt)
	if err != nil {
		return fail(err)
	}

	wants := map[string]bool{}
	for _, d := range strings.Split(*dump, ",") {
		wants[strings.TrimSpace(d)] = true
	}
	if wants["ir"] {
		fmt.Fprintln(stdout, ir.Print(a.Loop))
	}
	if wants["tac"] || wants["fibers"] {
		fmt.Fprintln(stdout, a.Fn.Dump())
	}
	if wants["parts"] {
		for pi, fibers := range a.Parts.Parts {
			fmt.Fprintf(stdout, "partition %d (cost %d): fibers %v\n", pi, a.Parts.Cost[pi], fibers)
		}
		fmt.Fprintln(stdout)
	}
	if wants["report"] {
		r := a.Report
		fmt.Fprintf(stdout, "kernel         %s\n", r.Kernel)
		fmt.Fprintf(stdout, "cores          %d\n", r.Cores)
		fmt.Fprintf(stdout, "initial fibers %d\n", r.InitialFibers)
		fmt.Fprintf(stdout, "data deps      %d\n", r.DataDeps)
		fmt.Fprintf(stdout, "load balance   %.2f (compute ops per partition: %v)\n", r.LoadBalance, r.ComputeOps)
		fmt.Fprintf(stdout, "comm ops       %d (%d transfers/iteration)\n", r.CommOps, r.Transfers)
		fmt.Fprintf(stdout, "static queues  %d core pairs\n", r.StaticQueues)
		fmt.Fprintf(stdout, "merge steps    %d\n", r.MergeSteps)
		if r.SpeculatedIfs > 0 {
			fmt.Fprintf(stdout, "speculated ifs %d\n", r.SpeculatedIfs)
		}
		fmt.Fprintln(stdout)
	}
	if wants["asm"] {
		for _, p := range a.Compiled.Programs {
			fmt.Fprintln(stdout, p.Disasm())
		}
	}
	return 0
}
