// Command fgpc is the compiler inspection tool: it compiles a kernel — a
// built-in by name, an .fgp source file, or a loop in the IR wire encoding
// — and dumps any stage of the pipeline: the IR, the lowered TAC with
// fiber assignments, the partition map, the compiler report, or the
// generated per-core machine code. -emit=source runs the direction the
// other dumps don't: it decompiles the selected kernel back to fgp source.
//
// Usage:
//
//	fgpc -kernel lammps-1 -cores 4 -dump ir,tac,parts,report,asm
//	fgpc -source kernel.fgp -dump report
//	fgpc -kernel irs-1 -emit source > irs1.fgp
//	fgpc -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fgp/internal/core"
	"fgp/internal/frontend"
	"fgp/internal/ir"
	"fgp/internal/kernels"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can pin the
// output of whole invocations against golden files.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fgpc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kernel := fs.String("kernel", "", "kernel name (see -list)")
	source := fs.String("source", "", "compile an fgp source file instead of a built-in kernel")
	irPath := fs.String("ir", "", "compile a loop in the IR JSON wire encoding from this file")
	cores := fs.Int("cores", 4, "number of cores to partition for")
	dump := fs.String("dump", "report", "comma-separated dumps: ir, tac, fibers, parts, report, asm")
	emit := fs.String("emit", "", "emit the kernel instead of compiling it: source (fgp source text)")
	spec := fs.Bool("speculate", false, "enable control-flow speculation")
	throughput := fs.Bool("throughput", false, "enable the DAG merge heuristic")
	schedule := fs.Bool("schedule", false, "enable within-region scheduling")
	partitioner := fs.String("partitioner", "heuristic", "partition selector: heuristic (paper greedy merge) or search (simulator-guided refinement)")
	searchBudget := fs.Int("search-budget", 0, "candidate budget for -partitioner=search (0 = default)")
	searchSeed := fs.Int64("search-seed", 0, "random seed for -partitioner=search")
	list := fs.Bool("list", false, "list available kernels")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fgpc:", err)
		return 1
	}

	if *list {
		for _, k := range kernels.All() {
			fmt.Fprintf(stdout, "%-10s %-8s %5.1f%% of app time; paper 4-core speedup %.2f\n",
				k.Name, k.App, k.PctTime, k.PaperSpeedup)
		}
		return 0
	}
	loop, err := loadLoop(*kernel, *source, *irPath)
	if err != nil {
		var fe *frontend.Error
		if errors.As(err, &fe) {
			fmt.Fprint(stderr, frontend.RenderDiags(*source, fe.Diags))
			return 1
		}
		return fail(err)
	}

	if *emit != "" {
		if *emit != "source" {
			return fail(fmt.Errorf("unknown -emit format %q (only \"source\")", *emit))
		}
		fmt.Fprint(stdout, frontend.Format(loop))
		return 0
	}

	opt := core.DefaultOptions(*cores)
	opt.Speculate = *spec
	opt.Throughput = *throughput
	opt.Schedule = *schedule
	opt.Partitioner = *partitioner
	opt.SearchBudget = *searchBudget
	opt.SearchSeed = *searchSeed
	a, err := core.Compile(loop, opt)
	if err != nil {
		return fail(err)
	}

	wants := map[string]bool{}
	for _, d := range strings.Split(*dump, ",") {
		wants[strings.TrimSpace(d)] = true
	}
	if wants["ir"] {
		fmt.Fprintln(stdout, ir.Print(a.Loop))
	}
	if wants["tac"] || wants["fibers"] {
		fmt.Fprintln(stdout, a.Fn.Dump())
	}
	if wants["parts"] {
		for pi, fibers := range a.Parts.Parts {
			fmt.Fprintf(stdout, "partition %d (cost %d): fibers %v\n", pi, a.Parts.Cost[pi], fibers)
		}
		fmt.Fprintln(stdout)
	}
	if wants["report"] {
		r := a.Report
		fmt.Fprintf(stdout, "kernel         %s\n", r.Kernel)
		fmt.Fprintf(stdout, "cores          %d\n", r.Cores)
		fmt.Fprintf(stdout, "initial fibers %d\n", r.InitialFibers)
		fmt.Fprintf(stdout, "data deps      %d\n", r.DataDeps)
		fmt.Fprintf(stdout, "load balance   %.2f (compute ops per partition: %v)\n", r.LoadBalance, r.ComputeOps)
		fmt.Fprintf(stdout, "comm ops       %d (%d transfers/iteration)\n", r.CommOps, r.Transfers)
		fmt.Fprintf(stdout, "static queues  %d core pairs\n", r.StaticQueues)
		fmt.Fprintf(stdout, "merge steps    %d\n", r.MergeSteps)
		if r.SpeculatedIfs > 0 {
			fmt.Fprintf(stdout, "speculated ifs %d\n", r.SpeculatedIfs)
		}
		if r.Partitioner == core.PartitionerSearch {
			fmt.Fprintf(stdout, "partitioner    search (explored %d candidates: %d -> %d cycles)\n",
				r.SearchExplored, r.SearchBaselineCycles, r.SearchCycles)
		}
		fmt.Fprintln(stdout)
	}
	if wants["asm"] {
		for _, p := range a.Compiled.Programs {
			fmt.Fprintln(stdout, p.Disasm())
		}
	}
	return 0
}

// loadLoop resolves the kernel selection flags — exactly one of a catalog
// name, an .fgp source path, or an IR wire-encoding path — to a validated
// loop. Source failures come back as *frontend.Error so the caller can
// render positioned diagnostics.
func loadLoop(kernel, sourcePath, irPath string) (*ir.Loop, error) {
	selected := 0
	for _, set := range []bool{kernel != "", sourcePath != "", irPath != ""} {
		if set {
			selected++
		}
	}
	switch {
	case selected == 0:
		return nil, fmt.Errorf("missing -kernel, -source or -ir (use -list to see built-ins)")
	case selected > 1:
		return nil, fmt.Errorf("use exactly one of -kernel, -source or -ir")
	case kernel != "":
		k, err := kernels.ByName(kernel)
		if err != nil {
			return nil, err
		}
		return k.Build(), nil
	case sourcePath != "":
		data, err := os.ReadFile(sourcePath)
		if err != nil {
			return nil, err
		}
		return frontend.Parse(data)
	default:
		data, err := os.ReadFile(irPath)
		if err != nil {
			return nil, err
		}
		return ir.UnmarshalLoop(data)
	}
}
