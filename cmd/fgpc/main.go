// Command fgpc is the compiler inspection tool: it compiles one of the 18
// evaluation kernels and dumps any stage of the pipeline — the IR, the
// lowered TAC with fiber assignments, the partition map, the compiler
// report, or the generated per-core machine code.
//
// Usage:
//
//	fgpc -kernel lammps-1 -cores 4 -dump ir,tac,parts,report,asm
//	fgpc -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fgp/internal/core"
	"fgp/internal/ir"
	"fgp/internal/kernels"
)

func main() {
	kernel := flag.String("kernel", "", "kernel name (see -list)")
	cores := flag.Int("cores", 4, "number of cores to partition for")
	dump := flag.String("dump", "report", "comma-separated dumps: ir, tac, fibers, parts, report, asm")
	spec := flag.Bool("speculate", false, "enable control-flow speculation")
	throughput := flag.Bool("throughput", false, "enable the DAG merge heuristic")
	schedule := flag.Bool("schedule", false, "enable within-region scheduling")
	list := flag.Bool("list", false, "list available kernels")
	flag.Parse()

	if *list {
		for _, k := range kernels.All() {
			fmt.Printf("%-10s %-8s %5.1f%% of app time; paper 4-core speedup %.2f\n",
				k.Name, k.App, k.PctTime, k.PaperSpeedup)
		}
		return
	}
	if *kernel == "" {
		fatal(fmt.Errorf("missing -kernel (use -list to see options)"))
	}
	k, err := kernels.ByName(*kernel)
	if err != nil {
		fatal(err)
	}
	opt := core.DefaultOptions(*cores)
	opt.Speculate = *spec
	opt.Throughput = *throughput
	opt.Schedule = *schedule
	a, err := core.Compile(k.Build(), opt)
	if err != nil {
		fatal(err)
	}

	wants := map[string]bool{}
	for _, d := range strings.Split(*dump, ",") {
		wants[strings.TrimSpace(d)] = true
	}
	if wants["ir"] {
		fmt.Println(ir.Print(a.Loop))
	}
	if wants["tac"] || wants["fibers"] {
		fmt.Println(a.Fn.Dump())
	}
	if wants["parts"] {
		for pi, fibers := range a.Parts.Parts {
			fmt.Printf("partition %d (cost %d): fibers %v\n", pi, a.Parts.Cost[pi], fibers)
		}
		fmt.Println()
	}
	if wants["report"] {
		r := a.Report
		fmt.Printf("kernel         %s\n", r.Kernel)
		fmt.Printf("cores          %d\n", r.Cores)
		fmt.Printf("initial fibers %d\n", r.InitialFibers)
		fmt.Printf("data deps      %d\n", r.DataDeps)
		fmt.Printf("load balance   %.2f (compute ops per partition: %v)\n", r.LoadBalance, r.ComputeOps)
		fmt.Printf("comm ops       %d (%d transfers/iteration)\n", r.CommOps, r.Transfers)
		fmt.Printf("static queues  %d core pairs\n", r.StaticQueues)
		fmt.Printf("merge steps    %d\n", r.MergeSteps)
		if r.SpeculatedIfs > 0 {
			fmt.Printf("speculated ifs %d\n", r.SpeculatedIfs)
		}
		fmt.Println()
	}
	if wants["asm"] {
		for _, p := range a.Compiled.Programs {
			fmt.Println(p.Disasm())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fgpc:", err)
	os.Exit(1)
}
