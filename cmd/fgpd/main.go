// Command fgpd is the resident compile-and-simulate daemon: an HTTP/JSON
// service that accepts IR kernels (or names of the built-in evaluation
// kernels), compiles them through the full pipeline with a content-addressed
// artifact cache, simulates them under admission control with per-request
// deadlines, and reports cycles, speedup, stall attribution and traces.
//
// Usage:
//
//	fgpd -addr 127.0.0.1:8095
//	curl -s localhost:8095/v1/run -d '{"kernel":"sphot-1","cores":3}'
//	curl -s 'localhost:8095/v1/attribution?kernel=sphot-1&cores=1,3'
//	curl -s localhost:8095/metrics
//
// SIGINT/SIGTERM drain the server gracefully: /healthz flips to 503, new
// work is refused, and in-flight requests run to completion (bounded by
// -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fgp/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fgpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8095", "listen address")
	workers := fs.Int("workers", 0, "max concurrent compile/simulate requests (0 = one per CPU)")
	queueDepth := fs.Int("queue-depth", 0, "max requests waiting for a worker before 429 (0 = 64)")
	timeout := fs.Duration("timeout", 0, "per-request wall-clock budget (0 = 60s)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	storeDir := fs.String("store-dir", "", "on-disk artifact store directory; restarts and replicas sharing it warm-start instead of recompiling (empty = memory-only)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "LRU byte budget of -store-dir (0 = 1 GiB)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fgpd:", err)
		return 1
	}

	svc, err := service.New(service.Config{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		Timeout:       *timeout,
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMaxBytes,
	})
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(stdout, "fgpd listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fail(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining
	fmt.Fprintln(stdout, "fgpd: signal received, draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		_ = srv.Close()
		return fail(err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(err)
	}
	fmt.Fprintln(stdout, "fgpd: drained cleanly")
	return 0
}
