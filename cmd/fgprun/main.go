// Command fgprun compiles and simulates one evaluation kernel, printing
// cycle counts, speedup over the sequential baseline, queue statistics and
// verification status.
//
// Usage:
//
//	fgprun -kernel irs-1 -cores 4
//	fgprun -kernel umt2k-6 -cores 4 -latency 50 -queue 20
//	fgprun -kernel sphot-1 -cores 3 -trace-out trace.json -trace-format perfetto
//	fgprun -kernel sphot-1 -cores 3 -trace-out report.txt -trace-format report
//
// -trace-out records the run's full observability event stream and writes
// it in the chosen -trace-format: "text" (one line per retired
// instruction), "perfetto" (Chrome trace-event JSON for ui.perfetto.dev,
// schema-validated before the file is reported written), or "report" (the
// per-core stall-attribution table).
package main

import (
	"flag"
	"fmt"
	"os"

	"fgp/internal/core"
	"fgp/internal/kernels"
	"fgp/internal/obs"
)

func main() {
	kernel := flag.String("kernel", "", "kernel name (fgpc -list shows options)")
	cores := flag.Int("cores", 4, "number of cores")
	latency := flag.Int64("latency", 5, "queue transfer latency in cycles")
	queueLen := flag.Int("queue", 20, "queue length in slots")
	spec := flag.Bool("speculate", false, "enable control-flow speculation")
	verify := flag.Bool("verify", true, "check results against the reference interpreter")
	trace := flag.Int("trace", 0, "print the first N simulated instructions as a timeline")
	traceOut := flag.String("trace-out", "", "record the run's event stream and write it to this file")
	traceFormat := flag.String("trace-format", "text", "format for -trace-out: "+obs.TraceFormats)
	flag.Parse()

	if *kernel == "" {
		fatal(fmt.Errorf("missing -kernel"))
	}
	k, err := kernels.ByName(*kernel)
	if err != nil {
		fatal(err)
	}

	seq, err := core.CompileSequential(k.Build())
	if err != nil {
		fatal(err)
	}
	sres, err := seq.RunDefault()
	if err != nil {
		fatal(err)
	}

	opt := core.DefaultOptions(*cores)
	opt.Speculate = *spec
	mc := seq.MachineConfig()
	mc.Cores = *cores
	mc.TransferLatency = *latency
	mc.QueueLen = *queueLen
	opt.Machine = &mc
	par, err := core.Compile(k.Build(), opt)
	if err != nil {
		fatal(err)
	}

	cfg := par.MachineConfig()
	if *traceOut != "" {
		rec := obs.NewRecorder()
		tcfg := cfg
		tcfg.Sink = rec
		if _, err := par.Run(tcfg); err != nil {
			fatal(err)
		}
		data, err := obs.RenderTrace(*traceFormat, rec.Meta, rec.Events)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("trace             %s (%s, %d events)\n", *traceOut, *traceFormat, len(rec.Events))
	}
	if *trace > 0 {
		tw := &truncWriter{w: os.Stdout, limit: *trace}
		tcfg := cfg
		tcfg.Trace = tw
		if _, err := par.Run(tcfg); err != nil && !tw.done() {
			fatal(err)
		}
		fmt.Println("--- end of trace ---")
	}
	var pres = new(struct {
		cycles    int64
		queues    int
		transfers int64
		perCore   []int64
		enqStalls []int64
		deqStalls []int64
	})
	if *verify {
		res, err := par.Verify(cfg)
		if err != nil {
			fatal(fmt.Errorf("verification failed: %w", err))
		}
		pres.cycles, pres.queues, pres.transfers = res.Cycles, res.PairsUsed, res.Transfers
		pres.perCore, pres.enqStalls, pres.deqStalls = res.PerCoreCycles, res.EnqStalls, res.DeqStalls
		fmt.Println("verification: parallel result bit-identical to the reference interpreter")
	} else {
		res, err := par.Run(cfg)
		if err != nil {
			fatal(err)
		}
		pres.cycles, pres.queues, pres.transfers = res.Cycles, res.PairsUsed, res.Transfers
		pres.perCore, pres.enqStalls, pres.deqStalls = res.PerCoreCycles, res.EnqStalls, res.DeqStalls
	}

	fmt.Printf("kernel            %s (%s, %.1f%% of app time)\n", k.Name, k.App, k.PctTime)
	fmt.Printf("machine           %d cores, queue length %d, transfer latency %d\n", *cores, *queueLen, *latency)
	fmt.Printf("sequential        %d cycles\n", sres.Cycles)
	fmt.Printf("parallel          %d cycles\n", pres.cycles)
	fmt.Printf("speedup           %.2f (paper, 4 cores @ L=5: %.2f)\n",
		float64(sres.Cycles)/float64(pres.cycles), k.PaperSpeedup)
	fmt.Printf("queue pairs used  %d\n", pres.queues)
	fmt.Printf("queue transfers   %d\n", pres.transfers)
	fmt.Printf("comm ops in loop  %d (%d transfers/iteration)\n", par.Report.CommOps, par.Report.Transfers)
	fmt.Printf("load balance      %.2f\n", par.Report.LoadBalance)
	fmt.Println("per-core timeline:")
	for c := range pres.perCore {
		stalls := pres.enqStalls[c] + pres.deqStalls[c]
		busy := pres.perCore[c] - stalls
		fmt.Printf("  core %d: %8d cycles = %8d busy + %7d queue stall (%.0f%% utilized)\n",
			c, pres.perCore[c], busy, stalls, 100*float64(busy)/float64(max64(pres.perCore[c], 1)))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fgprun:", err)
	os.Exit(1)
}

// truncWriter forwards whole lines until the limit is reached, then drops
// the rest (the simulation still runs to completion).
type truncWriter struct {
	w     *os.File
	limit int
	lines int
}

func (t *truncWriter) Write(p []byte) (int, error) {
	if t.lines < t.limit {
		t.lines++
		if _, err := t.w.Write(p); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (t *truncWriter) done() bool { return t.lines >= t.limit }
