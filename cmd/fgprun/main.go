// Command fgprun compiles and simulates one evaluation kernel, printing
// cycle counts, speedup over the sequential baseline, queue statistics and
// verification status.
//
// Usage:
//
//	fgprun -kernel irs-1 -cores 4
//	fgprun -kernel umt2k-6 -cores 4 -latency 50 -queue 20
//	fgprun -kernel sphot-1 -cores 3 -trace-out trace.json -trace-format perfetto
//	fgprun -kernel sphot-1 -cores 3 -trace-out report.txt -trace-format report
//
// -trace-out records the run's full observability event stream and writes
// it in the chosen -trace-format: "text" (one line per retired
// instruction), "perfetto" (Chrome trace-event JSON for ui.perfetto.dev,
// schema-validated before the file is reported written), or "report" (the
// per-core stall-attribution table).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"fgp/internal/core"
	"fgp/internal/frontend"
	"fgp/internal/ir"
	"fgp/internal/kernels"
	"fgp/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can pin the
// output of whole invocations against golden files.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fgprun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kernel := fs.String("kernel", "", "kernel name (fgpc -list shows options)")
	source := fs.String("source", "", "compile and run an fgp source file instead of a built-in kernel")
	cores := fs.Int("cores", 4, "number of cores")
	latency := fs.Int64("latency", 5, "queue transfer latency in cycles")
	queueLen := fs.Int("queue", 20, "queue length in slots")
	spec := fs.Bool("speculate", false, "enable control-flow speculation")
	partitioner := fs.String("partitioner", "heuristic", "partition selector: heuristic (paper greedy merge) or search (simulator-guided refinement)")
	searchBudget := fs.Int("search-budget", 0, "candidate budget for -partitioner=search (0 = default)")
	searchSeed := fs.Int64("search-seed", 0, "random seed for -partitioner=search")
	verify := fs.Bool("verify", true, "check results against the reference interpreter")
	engine := fs.String("engine", "", "simulation engine: burst (default), reference, or threaded")
	trace := fs.Int("trace", 0, "print the first N simulated instructions as a timeline")
	traceOut := fs.String("trace-out", "", "record the run's event stream and write it to this file")
	traceFormat := fs.String("trace-format", "text", "format for -trace-out: "+obs.TraceFormats)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "fgprun:", err)
		return 1
	}

	var loop *ir.Loop
	var k *kernels.Kernel
	switch {
	case *kernel != "" && *source != "":
		return fail(fmt.Errorf("use exactly one of -kernel or -source"))
	case *kernel != "":
		var err error
		if k, err = kernels.ByName(*kernel); err != nil {
			return fail(err)
		}
		loop = k.Build()
	case *source != "":
		data, err := os.ReadFile(*source)
		if err != nil {
			return fail(err)
		}
		if loop, err = frontend.Parse(data); err != nil {
			var fe *frontend.Error
			if errors.As(err, &fe) {
				fmt.Fprint(stderr, frontend.RenderDiags(*source, fe.Diags))
				return 1
			}
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("missing -kernel or -source"))
	}

	seq, err := core.CompileSequential(loop)
	if err != nil {
		return fail(err)
	}
	sres, err := seq.RunDefault()
	if err != nil {
		return fail(err)
	}

	opt := core.DefaultOptions(*cores)
	opt.Speculate = *spec
	opt.Partitioner = *partitioner
	opt.SearchBudget = *searchBudget
	opt.SearchSeed = *searchSeed
	mc := seq.MachineConfig()
	mc.Cores = *cores
	mc.TransferLatency = *latency
	mc.QueueLen = *queueLen
	opt.Machine = &mc
	par, err := core.Compile(loop, opt)
	if err != nil {
		return fail(err)
	}

	cfg := par.MachineConfig()
	cfg.Engine = *engine
	if *traceOut != "" {
		rec := obs.NewRecorder()
		tcfg := cfg
		tcfg.Sink = rec
		if _, err := par.Run(tcfg); err != nil {
			return fail(err)
		}
		data, err := obs.RenderTrace(*traceFormat, rec.Meta, rec.Events)
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "trace             %s (%s, %d events)\n", *traceOut, *traceFormat, len(rec.Events))
	}
	if *trace > 0 {
		tw := &truncWriter{w: stdout, limit: *trace}
		tcfg := cfg
		tcfg.Trace = tw
		if _, err := par.Run(tcfg); err != nil && !tw.done() {
			return fail(err)
		}
		fmt.Fprintln(stdout, "--- end of trace ---")
	}
	var pres = new(struct {
		cycles    int64
		queues    int
		transfers int64
		perCore   []int64
		enqStalls []int64
		deqStalls []int64
	})
	if *verify {
		res, err := par.Verify(cfg)
		if err != nil {
			return fail(fmt.Errorf("verification failed: %w", err))
		}
		pres.cycles, pres.queues, pres.transfers = res.Cycles, res.PairsUsed, res.Transfers
		pres.perCore, pres.enqStalls, pres.deqStalls = res.PerCoreCycles, res.EnqStalls, res.DeqStalls
		fmt.Fprintln(stdout, "verification: parallel result bit-identical to the reference interpreter")
	} else {
		res, err := par.Run(cfg)
		if err != nil {
			return fail(err)
		}
		pres.cycles, pres.queues, pres.transfers = res.Cycles, res.PairsUsed, res.Transfers
		pres.perCore, pres.enqStalls, pres.deqStalls = res.PerCoreCycles, res.EnqStalls, res.DeqStalls
	}

	if k != nil {
		fmt.Fprintf(stdout, "kernel            %s (%s, %.1f%% of app time)\n", k.Name, k.App, k.PctTime)
	} else {
		fmt.Fprintf(stdout, "kernel            %s (from %s)\n", loop.Name, *source)
	}
	fmt.Fprintf(stdout, "machine           %d cores, queue length %d, transfer latency %d\n", *cores, *queueLen, *latency)
	fmt.Fprintf(stdout, "sequential        %d cycles\n", sres.Cycles)
	fmt.Fprintf(stdout, "parallel          %d cycles\n", pres.cycles)
	if k != nil {
		fmt.Fprintf(stdout, "speedup           %.2f (paper, 4 cores @ L=5: %.2f)\n",
			float64(sres.Cycles)/float64(pres.cycles), k.PaperSpeedup)
	} else {
		fmt.Fprintf(stdout, "speedup           %.2f\n", float64(sres.Cycles)/float64(pres.cycles))
	}
	fmt.Fprintf(stdout, "queue pairs used  %d\n", pres.queues)
	fmt.Fprintf(stdout, "queue transfers   %d\n", pres.transfers)
	fmt.Fprintf(stdout, "comm ops in loop  %d (%d transfers/iteration)\n", par.Report.CommOps, par.Report.Transfers)
	fmt.Fprintf(stdout, "load balance      %.2f\n", par.Report.LoadBalance)
	if par.Report.Partitioner == core.PartitionerSearch {
		fmt.Fprintf(stdout, "partitioner       search (explored %d candidates: %d -> %d cycles)\n",
			par.Report.SearchExplored, par.Report.SearchBaselineCycles, par.Report.SearchCycles)
	}
	fmt.Fprintln(stdout, "per-core timeline:")
	for c := range pres.perCore {
		stalls := pres.enqStalls[c] + pres.deqStalls[c]
		busy := pres.perCore[c] - stalls
		fmt.Fprintf(stdout, "  core %d: %8d cycles = %8d busy + %7d queue stall (%.0f%% utilized)\n",
			c, pres.perCore[c], busy, stalls, 100*float64(busy)/float64(max64(pres.perCore[c], 1)))
	}
	return 0
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// truncWriter forwards whole lines until the limit is reached, then drops
// the rest (the simulation still runs to completion). The simulator hands
// it buffered multi-line chunks, so it counts newlines, not Write calls.
type truncWriter struct {
	w     io.Writer
	limit int
	lines int
}

func (t *truncWriter) Write(p []byte) (int, error) {
	n := len(p)
	for t.lines < t.limit && len(p) > 0 {
		i := bytes.IndexByte(p, '\n')
		if i < 0 {
			// An unterminated tail: forward it, count it when its newline
			// arrives in the next chunk... which never happens with the
			// line-oriented trace writer, so just count it now.
			t.lines++
			if _, err := t.w.Write(p); err != nil {
				return 0, err
			}
			return n, nil
		}
		t.lines++
		if _, err := t.w.Write(p[:i+1]); err != nil {
			return 0, err
		}
		p = p[i+1:]
	}
	return n, nil
}

func (t *truncWriter) done() bool { return t.lines >= t.limit }
