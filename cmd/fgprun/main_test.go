package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden pins got against testdata/name; -update rewrites the file.
// The simulator and compiler are fully deterministic, so whole-invocation
// output is stable byte-for-byte.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/... -update` to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended)\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestRunGolden pins the full fgprun output for one kernel per application
// suite, verification enabled — so each run also re-checks the compiled
// kernel against the reference interpreter.
func TestRunGolden(t *testing.T) {
	for _, kernel := range []string{"lammps-1", "irs-1", "umt2k-1", "sphot-1"} {
		kernel := kernel
		t.Run(kernel, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{"-kernel", kernel, "-cores", "4"}, &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
			}
			if errb.Len() != 0 {
				t.Errorf("unexpected stderr: %s", errb.String())
			}
			checkGolden(t, "golden_"+kernel+".txt", out.Bytes())
		})
	}
}

func TestRunBadInvocations(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
		code int
	}{
		{"no kernel", nil, "missing -kernel", 1},
		{"unknown kernel", []string{"-kernel", "nope-1"}, "nope-1", 1},
		{"bad flag", []string{"-no-such-flag"}, "flag provided but not defined", 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(c.args, &out, &errb); code != c.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, c.code, errb.String())
			}
			if !strings.Contains(errb.String(), c.want) {
				t.Errorf("stderr %q does not mention %q", errb.String(), c.want)
			}
		})
	}
}

// TestRunTraceTruncation checks the -trace timeline respects its line limit.
func TestRunTraceTruncation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-kernel", "sphot-1", "-cores", "2", "-trace", "5", "-verify=false"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	head := s[:strings.Index(s, "--- end of trace ---")]
	if got := strings.Count(head, "\n"); got != 5 {
		t.Errorf("trace printed %d lines, want 5", got)
	}
}
