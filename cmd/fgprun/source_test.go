package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSourceGolden pins the full fgprun output for each committed example
// program — the source front door's CLI contract, including the adapted
// header for kernels that aren't in the catalog.
func TestSourceGolden(t *testing.T) {
	for _, name := range []string{"dot", "stencil", "branchy"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("..", "..", "examples", "source", name+".fgp")
			var out, errb bytes.Buffer
			if code := run([]string{"-source", path, "-cores", "4"}, &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
			}
			checkGolden(t, "golden_source_"+name+".txt", out.Bytes())
		})
	}
}

// TestSourceDiagnostics: a broken program exits 1 with positioned
// diagnostics on stderr, and -kernel/-source are mutually exclusive.
func TestSourceDiagnostics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.fgp")
	if err := os.WriteFile(path, []byte("for i = 0; i <= 4; i += 1 { }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-source", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), path+":1:14:") {
		t.Errorf("stderr lacks a path:line:col position:\n%s", errb.String())
	}

	errb.Reset()
	if code := run([]string{"-kernel", "irs-1", "-source", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "exactly one") {
		t.Errorf("stderr %q does not explain the conflict", errb.String())
	}
}
