// Command fgpfuzz is the differential fuzzing driver: it generates random
// IR kernels and cross-checks the full compile-and-simulate pipeline
// against the reference interpreter over the {cores} × {speculation} ×
// {normalization} × {burst, reference engine} matrix (see internal/fuzz).
//
// Usage:
//
//	fgpfuzz -seeds 1000                 # batch of seeds 0..999
//	fgpfuzz -duration 5m                # soak until the clock runs out
//	fgpfuzz -minimize crashers/x.bin    # reproduce + shrink one input
//	fgpfuzz -minimize 0x2a              # same, from a numeric seed
//	fgpfuzz -selftest                   # injected-miscompile mutation test
//
// Failures are minimized automatically and written as raw byte inputs
// (plus a readable .txt rendering) under -out; commit them to
// internal/fuzz/testdata/crashers/ together with the fix so the corpus
// test replays them forever.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fgp/internal/experiments"
	"fgp/internal/fuzz"
	"fgp/internal/ir"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 200, "number of seeds to check in batch mode")
		base     = flag.Uint64("base", 0, "first seed of the batch")
		duration = flag.Duration("duration", 0, "soak: keep running batches until this much time has passed (overrides -seeds)")
		cores    = flag.Int("cores", 4, "maximum core count of the configuration matrix")
		workers  = flag.Int("workers", 0, "parallel oracle workers (0 = all CPUs)")
		trips    = flag.Int("trips", 0, "loop trip count (0 = generator default)")
		stmts    = flag.Int("stmts", 0, "max random statements per kernel (0 = generator default)")
		minimize = flag.String("minimize", "", "reproduce and shrink one input: a crasher file path or a numeric seed (0x.. or decimal)")
		maxCheck = flag.Int("maxchecks", 2000, "oracle-invocation budget for the shrinker")
		out      = flag.String("out", "crashers", "directory for minimized crasher files")
		selftest = flag.Bool("selftest", false, "inject a miscompile and verify the oracle catches it and the shrinker minimizes it")
		searchB  = flag.Int("search-budget", 0, "add the search-partitioner leg to the matrix with this candidate budget (0 = off)")
		verbose  = flag.Bool("v", false, "print every kernel name as it is checked")
	)
	flag.Parse()

	gc := fuzz.GenConfig{Trips: *trips, MaxStmts: *stmts}
	oc := fuzz.OracleConfig{MaxCores: *cores, SearchBudget: *searchB}

	switch {
	case *selftest:
		os.Exit(runSelftest(gc, oc, *maxCheck))
	case *minimize != "":
		os.Exit(runMinimize(*minimize, gc, oc, *maxCheck, *out))
	default:
		os.Exit(runBatch(gc, oc, *seeds, *base, *duration, *workers, *maxCheck, *out, *verbose))
	}
}

// runBatch sweeps seeds through the oracle on a worker pool; every failure
// is minimized and written out. Exit code 0 iff no mismatches.
func runBatch(gc fuzz.GenConfig, oc fuzz.OracleConfig, seeds int, base uint64, soak time.Duration, workers, maxCheck int, out string, verbose bool) int {
	start := time.Now()
	var checked, failures atomic.Int64
	var mu sync.Mutex // serializes failure reporting/minimization
	batch := func(lo uint64, n int) {
		_ = experiments.ParallelEach(n, workers, func(i int) error {
			seed := lo + uint64(i)
			l := fuzz.Generate(seed, gc)
			if verbose {
				fmt.Printf("seed %#x: %s\n", seed, l.Name)
			}
			err := fuzz.Check(l, oc)
			checked.Add(1)
			if err == nil {
				return nil
			}
			failures.Add(1)
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "MISMATCH seed %#x: %v\n", seed, err)
			reportCrasher(fuzz.SeedBytes(seed), l, gc, oc, maxCheck, out)
			return err
		})
	}
	if soak > 0 {
		const chunk = 64
		lo := base
		for time.Since(start) < soak {
			batch(lo, chunk)
			lo += chunk
		}
	} else {
		batch(base, seeds)
	}
	fmt.Printf("fgpfuzz: %d kernels checked in %v (matrix: 1..%d cores × spec × norm × engine), %d mismatches\n",
		checked.Load(), time.Since(start).Round(time.Millisecond), oc.MaxCores, failures.Load())
	if failures.Load() > 0 {
		return 1
	}
	return 0
}

// reportCrasher minimizes a failing input and writes <out>/<name>.bin (the
// raw bytes) and <out>/<name>.txt (the minimized kernel rendering).
func reportCrasher(data []byte, l *ir.Loop, gc fuzz.GenConfig, oc fuzz.OracleConfig, maxCheck int, out string) {
	fails := func(c *ir.Loop) bool { return fuzz.Check(c, oc) != nil }
	min := fuzz.Shrink(l, fails, maxCheck)
	err := fuzz.Check(min, oc)
	if err == nil { // shrinker over-reduced (budget edge); fall back
		min, err = l, fuzz.Check(l, oc)
	}
	fmt.Fprintf(os.Stderr, "minimized to %d statements, %d trips:\n%s%v\n",
		ir.CountStmts(min.Body), min.Trips(), ir.Print(min), err)
	if out == "" {
		return
	}
	if mkerr := os.MkdirAll(out, 0o755); mkerr != nil {
		fmt.Fprintf(os.Stderr, "fgpfuzz: cannot create %s: %v\n", out, mkerr)
		return
	}
	name := l.Name
	if werr := os.WriteFile(filepath.Join(out, name+".bin"), data, 0o644); werr != nil {
		fmt.Fprintf(os.Stderr, "fgpfuzz: %v\n", werr)
	}
	txt := fmt.Sprintf("# %v\n# minimized:\n%s", err, ir.Print(min))
	if werr := os.WriteFile(filepath.Join(out, name+".txt"), []byte(txt), 0o644); werr != nil {
		fmt.Fprintf(os.Stderr, "fgpfuzz: %v\n", werr)
	}
	fmt.Fprintf(os.Stderr, "fgpfuzz: wrote %s/%s.{bin,txt} — commit under internal/fuzz/testdata/crashers/ with the fix\n", out, name)
}

// runMinimize reproduces one input (file or numeric seed) and shrinks it.
func runMinimize(arg string, gc fuzz.GenConfig, oc fuzz.OracleConfig, maxCheck int, out string) int {
	var data []byte
	if b, err := os.ReadFile(arg); err == nil {
		data = b
	} else if seed, perr := strconv.ParseUint(strings.TrimPrefix(arg, "0x"), map[bool]int{true: 16, false: 10}[strings.HasPrefix(arg, "0x")], 64); perr == nil {
		data = fuzz.SeedBytes(seed)
	} else {
		fmt.Fprintf(os.Stderr, "fgpfuzz: -minimize %q: not a readable file (%v) or a seed (%v)\n", arg, err, perr)
		return 2
	}
	l := fuzz.FromBytes(data, gc)
	err := fuzz.Check(l, oc)
	if err == nil {
		fmt.Printf("fgpfuzz: input passes the oracle (%d statements); nothing to minimize\n", ir.CountStmts(l.Body))
		return 0
	}
	fmt.Fprintf(os.Stderr, "reproduced: %v\n", err)
	reportCrasher(data, l, gc, oc, maxCheck, out)
	return 1
}

// runSelftest proves the oracle detects a real divergence: it injects a
// miscompile (first add/sub flipped) into the compiled path only, requires
// the oracle to flag it, and requires the shrinker to keep it failing at a
// reduced size. Exit 0 = harness healthy.
func runSelftest(gc fuzz.GenConfig, oc fuzz.OracleConfig, maxCheck int) int {
	mutOC := oc
	mutOC.MutateCompiled = func(x *ir.Loop) *ir.Loop {
		m, _ := fuzz.InjectMiscompile(x)
		return m
	}
	mutFails := func(l *ir.Loop) bool { return fuzz.Check(l, mutOC) != nil }
	for seed := uint64(0); seed < 20; seed++ {
		l := fuzz.Generate(seed, gc)
		if _, ok := fuzz.InjectMiscompile(l); !ok || !mutFails(l) {
			continue
		}
		min := fuzz.Shrink(l, mutFails, maxCheck)
		if !mutFails(min) {
			fmt.Fprintln(os.Stderr, "fgpfuzz selftest: FAIL — shrinker lost the injected miscompile")
			return 1
		}
		fmt.Printf("fgpfuzz selftest: ok — injected miscompile caught at seed %d, minimized %d -> %d statements\n",
			seed, ir.CountStmts(l.Body), ir.CountStmts(min.Body))
		return 0
	}
	fmt.Fprintln(os.Stderr, "fgpfuzz selftest: FAIL — no injected miscompile detected in 20 seeds")
	return 1
}
