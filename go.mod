module fgp

go 1.22
