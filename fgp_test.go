package fgp

import (
	"testing"

	"fgp/ir"
	"fgp/kernels"
)

func dotLoop(n int64) *ir.Loop {
	b := ir.NewBuilder("dot", "i", 0, n, 1)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%7) * 0.5
		ys[i] = float64(i%5) - 2
	}
	b.ArrayF("x", xs)
	b.ArrayF("y", ys)
	b.ArrayF("o", make([]float64, n))
	acc := b.ScalarF("acc", 0)
	_ = acc
	b.LiveOut("acc")
	i := b.Idx()
	p := b.Def("p", ir.MulE(ir.LDF("x", i), ir.LDF("y", i)))
	b.Def("acc", ir.AddE(b.T("acc"), p))
	b.StoreF("o", i, ir.SqrtE(ir.AbsE(p)))
	return b.MustBuild()
}

func TestPublicAPICompileRunVerify(t *testing.T) {
	l := dotLoop(256)
	ref, err := Interpret(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 2, 4} {
		a, err := Compile(l, DefaultOptions(cores))
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		res, err := a.Verify(a.MachineConfig())
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		if got := res.LiveOut["acc"]; got.F != ref.Temps["acc"].F {
			t.Fatalf("cores=%d: acc = %v, want %v", cores, got.F, ref.Temps["acc"].F)
		}
	}
}

func TestSpeedupHelper(t *testing.T) {
	sp, err := Speedup(dotLoop(2048), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 {
		t.Fatalf("speedup = %v", sp)
	}
}

func TestCompileSequentialHasNoComm(t *testing.T) {
	a, err := CompileSequential(dotLoop(64))
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.CommOps != 0 {
		t.Errorf("sequential compile inserted %d comm ops", a.Report.CommOps)
	}
}

func TestKernelsFacade(t *testing.T) {
	if len(kernels.All()) != 18 {
		t.Fatalf("kernel facade returns %d kernels", len(kernels.All()))
	}
	k, err := kernels.ByName("irs-1")
	if err != nil {
		t.Fatal(err)
	}
	if k.App != "irs" {
		t.Error("wrong app")
	}
	if len(kernels.Apps()) != 4 || len(kernels.ByApp("lammps")) != 5 {
		t.Error("app grouping wrong")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(4)
	if cfg.QueueLen != 20 {
		t.Errorf("queue length %d, want 20 (paper Section V)", cfg.QueueLen)
	}
	if cfg.TransferLatency != 5 {
		t.Errorf("transfer latency %d, want 5 (paper Section V)", cfg.TransferLatency)
	}
}
