package ir_test

import (
	"strings"
	"testing"

	"fgp/ir"
)

// TestFacadeRoundTrip builds the doc-comment example through the public
// facade and checks the aliases wire through to the implementation.
func TestFacadeRoundTrip(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{4, 3, 2, 1}
	b := ir.NewBuilder("dot", "i", 0, 4, 1)
	b.ArrayF("x", xs)
	b.ArrayF("y", ys)
	acc := b.ScalarF("acc", 0)
	_ = acc
	b.LiveOut("acc")
	i := b.Idx()
	b.Def("acc", ir.AddE(b.T("acc"), ir.MulE(ir.LDF("x", i), ir.LDF("y", i))))
	loop := b.MustBuild()

	if err := ir.Validate(loop); err != nil {
		t.Fatal(err)
	}
	out := ir.Print(loop)
	if !strings.Contains(out, "loop dot") || !strings.Contains(out, "liveout acc") {
		t.Errorf("facade Print:\n%s", out)
	}
	if loop.Trips() != 4 {
		t.Errorf("trips = %d", loop.Trips())
	}
}

func TestFacadeConstructors(t *testing.T) {
	cases := []struct {
		e    ir.Expr
		want ir.Kind
	}{
		{ir.F(1), ir.F64},
		{ir.I(1), ir.I64},
		{ir.SubE(ir.F(2), ir.F(1)), ir.F64},
		{ir.DivE(ir.F(2), ir.F(1)), ir.F64},
		{ir.RemE(ir.I(5), ir.I(2)), ir.I64},
		{ir.MinE(ir.I(1), ir.I(2)), ir.I64},
		{ir.MaxE(ir.F(1), ir.F(2)), ir.F64},
		{ir.AndE(ir.I(1), ir.I(2)), ir.I64},
		{ir.OrE(ir.I(1), ir.I(2)), ir.I64},
		{ir.XorE(ir.I(1), ir.I(2)), ir.I64},
		{ir.ShlE(ir.I(1), ir.I(2)), ir.I64},
		{ir.ShrE(ir.I(4), ir.I(1)), ir.I64},
		{ir.EqE(ir.F(1), ir.F(1)), ir.I64},
		{ir.NeE(ir.I(1), ir.I(2)), ir.I64},
		{ir.LeE(ir.F(1), ir.F(2)), ir.I64},
		{ir.GeE(ir.I(1), ir.I(2)), ir.I64},
		{ir.NotE(ir.I(0)), ir.I64},
		{ir.ExpE(ir.F(0)), ir.F64},
		{ir.LogE(ir.F(1)), ir.F64},
		{ir.FloorE(ir.F(1.5)), ir.F64},
		{ir.IToF(ir.I(2)), ir.F64},
		{ir.FToI(ir.F(2.5)), ir.I64},
		{ir.TF("a"), ir.F64},
		{ir.TI("n"), ir.I64},
		{ir.LDI("p", ir.I(0)), ir.I64},
		{ir.AbsE(ir.NegE(ir.F(1))), ir.F64},
		{ir.SqrtE(ir.F(4)), ir.F64},
		{ir.GtE(ir.F(1), ir.F(0)), ir.I64},
		{ir.LtE(ir.I(1), ir.I(0)), ir.I64},
	}
	for i, c := range cases {
		if got := c.e.Kind(); got != c.want {
			t.Errorf("case %d (%v): kind %v, want %v", i, c.e, got, c.want)
		}
	}
}
