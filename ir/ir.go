// Package ir is the public surface of the compiler's input representation:
// typed expression trees, statements, and counted loops, plus the Builder
// used to author them. It re-exports the internal implementation so that
// user code, the examples, and the evaluation kernels share one type
// universe.
//
// A loop is authored with a Builder:
//
//	b := ir.NewBuilder("dot", "i", 0, 1024, 1)
//	b.ArrayF("x", xs)
//	b.ArrayF("y", ys)
//	acc := b.ScalarF("acc", 0)
//	_ = acc
//	b.LiveOut("acc")
//	i := b.Idx()
//	b.Def("acc", ir.AddE(b.T("acc"), ir.MulE(ir.LDF("x", i), ir.LDF("y", i))))
//	loop := b.MustBuild()
package ir

import "fgp/internal/ir"

// Core types.
type (
	// Kind is the value class of an expression (F64 or I64).
	Kind = ir.Kind
	// Expr is a node of an expression tree.
	Expr = ir.Expr
	// Stmt is a loop-body statement.
	Stmt = ir.Stmt
	// Loop is the unit of compilation.
	Loop = ir.Loop
	// Builder assembles loops.
	Builder = ir.Builder
	// BinOp and UnOp enumerate operators.
	BinOp = ir.BinOp
	UnOp  = ir.UnOp
	// ArrayDecl and ScalarDecl describe the data environment.
	ArrayDecl  = ir.ArrayDecl
	ScalarDecl = ir.ScalarDecl
	// Assign and If are the two statement forms.
	Assign = ir.Assign
	If     = ir.If
)

// Value kinds.
const (
	F64 = ir.F64
	I64 = ir.I64
)

// NewBuilder starts a loop named name with induction variable index
// running start..end (exclusive) with the given step.
func NewBuilder(name, index string, start, end, step int64) *Builder {
	return ir.NewBuilder(name, index, start, end, step)
}

// Validate checks the structural invariants of a loop.
func Validate(l *Loop) error { return ir.Validate(l) }

// Print renders a loop as pseudo-source.
func Print(l *Loop) string { return ir.Print(l) }

// MarshalLoop encodes a loop as deterministic JSON — the wire format the
// fgpd service accepts and the bytes its compile cache content-addresses.
func MarshalLoop(l *Loop) ([]byte, error) { return ir.MarshalLoop(l) }

// UnmarshalLoop decodes and validates a loop from its JSON encoding.
func UnmarshalLoop(data []byte) (*Loop, error) { return ir.UnmarshalLoop(data) }

// Literal and reference constructors.
var (
	F   = ir.F   // float literal
	I   = ir.I   // integer literal
	TF  = ir.TF  // reference to an F64 temporary
	TI  = ir.TI  // reference to an I64 temporary
	LDF = ir.LDF // load from an F64 array
	LDI = ir.LDI // load from an I64 array
)

// Binary operators (the E suffix avoids clashing with operator constants).
var (
	AddE = ir.AddE
	SubE = ir.SubE
	MulE = ir.MulE
	DivE = ir.DivE
	RemE = ir.RemE
	MinE = ir.MinE
	MaxE = ir.MaxE
	AndE = ir.AndE
	OrE  = ir.OrE
	XorE = ir.XorE
	ShlE = ir.ShlE
	ShrE = ir.ShrE
	EqE  = ir.EqE
	NeE  = ir.NeE
	LtE  = ir.LtE
	LeE  = ir.LeE
	GtE  = ir.GtE
	GeE  = ir.GeE
)

// Unary operators and intrinsics.
var (
	NegE   = ir.NegE
	NotE   = ir.NotE
	SqrtE  = ir.SqrtE
	ExpE   = ir.ExpE
	LogE   = ir.LogE
	AbsE   = ir.AbsE
	FloorE = ir.FloorE
	IToF   = ir.IToF
	FToI   = ir.FToI
)
